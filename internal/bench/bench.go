// Package bench is the experiment harness that regenerates the paper's
// evaluation (§4): engine factories for Cicada and the six baselines,
// fixed-duration throughput measurement with ramp-up, and runners for the
// TPC-C and YCSB configurations used by every figure and table.
package bench

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"cicada/internal/baselines/ermia"
	"cicada/internal/baselines/hekaton"
	"cicada/internal/baselines/mocc"
	"cicada/internal/baselines/silo"
	"cicada/internal/baselines/tictoc"
	"cicada/internal/baselines/twopl"
	"cicada/internal/cicadaeng"
	"cicada/internal/core"
	"cicada/internal/engine"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
	"cicada/internal/wal"
	"cicada/internal/workload/tpcc"
	"cicada/internal/workload/ycsb"
)

// EngineNames is the comparison order used in the paper's figures.
var EngineNames = []string{"Cicada", "Silo'", "TicToc", "2PL-NoWait", "Hekaton", "ERMIA", "MOCC"}

// Telemetry, when non-nil, gives every trial a fresh metric registry: the
// registry is installed into the engine's Config, published to the Live
// handle (so a -metrics-addr HTTP endpoint follows the trial currently
// running), and its values are exported into Result.Telemetry when the
// trial ends. nil (the default) keeps trials telemetry-free.
var Telemetry *telemetry.Live

// TraceOpts, when non-nil, gives every trial a fresh transaction tracer
// (sized by the trial's worker count; Workers is overridden). nil (the
// default) keeps trials untraced. Set by cicada-bench's -trace flag.
var TraceOpts *trace.Options

// TraceLive, when non-nil, follows the current trial's tracer so a
// -metrics-addr endpoint can serve /debug/cicada-trace across trials.
var TraceLive *trace.Live

// trialRegistry creates and publishes a per-trial registry, or returns nil
// when telemetry is disabled.
func trialRegistry(workers int) *telemetry.Registry {
	if Telemetry == nil {
		return nil
	}
	reg := telemetry.NewRegistry(workers)
	Telemetry.Set(reg)
	return reg
}

// trialTracer creates and publishes a per-trial tracer (enabled), or
// returns nil when tracing is disabled. When the trial also has a registry,
// the tracer's trace_* families are registered there.
func trialTracer(workers int, reg *telemetry.Registry) *trace.Tracer {
	if TraceOpts == nil {
		return nil
	}
	o := *TraceOpts
	o.Workers = workers
	tr := trace.New(o)
	tr.SetEnabled(true)
	if reg != nil {
		tr.RegisterMetrics(reg)
	}
	if TraceLive != nil {
		TraceLive.Set(tr)
	}
	return tr
}

// telemetryBase snapshots the monotone series at measurement start so the
// exported deltas cover exactly the measurement window.
func telemetryBase(reg *telemetry.Registry) map[string]float64 {
	if reg == nil {
		return nil
	}
	return reg.MonotoneValues()
}

// exportTelemetry stores the trial's final metric values in res.Telemetry,
// adding a ".delta" entry (final minus measurement-window start) for each
// monotone series captured in base.
func exportTelemetry(res *Result, reg *telemetry.Registry, base map[string]float64) {
	if reg == nil {
		return
	}
	vals := reg.Values()
	for k, v := range base {
		vals[k+".delta"] = vals[k] - v
	}
	res.Telemetry = vals
}

// Factory returns the factory for an engine name. Cicada uses the paper's
// default options; use CicadaFactory for ablated variants.
func Factory(name string) engine.Factory {
	switch name {
	case "Cicada":
		return CicadaFactory(nil)
	case "Silo'":
		return silo.New
	case "TicToc":
		return tictoc.New
	case "2PL-NoWait":
		return twopl.New
	case "Hekaton":
		return hekaton.New
	case "ERMIA":
		return ermia.New
	case "MOCC":
		return mocc.New
	}
	panic("bench: unknown engine " + name)
}

// CicadaFactory builds a Cicada factory with the paper-default core options
// optionally adjusted by mutate (used for the Figure 7/8/9/10 and Table 2
// variants).
func CicadaFactory(mutate func(*core.Options)) engine.Factory {
	return func(cfg engine.Config) engine.DB {
		opts := core.DefaultOptions(cfg.Workers)
		if mutate != nil {
			mutate(&opts)
		}
		return cicadaeng.New(cfg, opts)
	}
}

// Result is one measurement point.
type Result struct {
	// Experiment identifies the figure/table.
	Experiment string `json:"experiment"`
	// Engine is the scheme name (possibly a variant label).
	Engine string `json:"engine"`
	// Threads is the worker count.
	Threads int `json:"threads"`
	// Param is the swept parameter's value (skew, record size, backoff µs,
	// GC interval µs, ...), 0 if none.
	Param float64 `json:"param"`
	// TPS is committed transactions per second during the measurement
	// window (all transaction types, as in the paper).
	TPS float64 `json:"tps"`
	// AbortRate is aborts / (aborts + commits) over the whole run.
	AbortRate float64 `json:"abort_rate"`
	// AbortTimeFrac is time spent on aborted execution plus backoff
	// divided by busy time (Figure 10's "abort time").
	AbortTimeFrac float64 `json:"abort_time_frac"`
	// AllocsPerTxn is heap allocations per committed transaction during
	// the measurement window (process-wide mallocs / commits; YCSB runs
	// only). 0 when not measured.
	AllocsPerTxn float64 `json:"allocs_per_txn,omitempty"`
	// FsyncsPerTxn is WAL batch fsyncs per committed transaction during
	// the measurement window; group commit amortizes many transactions
	// into one fsync, so this is ≪ 1. Only set for durable (WAL-attached)
	// runs.
	FsyncsPerTxn float64 `json:"fsyncs_per_txn,omitempty"`
	// Extra carries experiment-specific metrics (records/s, space
	// overhead, staleness).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Telemetry carries the trial's final metric values plus
	// measurement-window deltas (".delta" suffix) for monotone series,
	// populated only when the package-level Telemetry handle is set.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// Durations controls measurement length; tests and benchmarks shrink them.
type Durations struct {
	Ramp    time.Duration
	Measure time.Duration
}

// DefaultDurations is used by cmd/cicada-bench.
var DefaultDurations = Durations{Ramp: 500 * time.Millisecond, Measure: 2 * time.Second}

// runLoop drives per-worker generators until stop closes; it is shared by
// the TPC-C and YCSB runners.
func runLoop(db engine.DB, drive func(id int, wk engine.Worker, stop <-chan struct{})) (stop chan struct{}, done *sync.WaitGroup) {
	stop = make(chan struct{})
	done = &sync.WaitGroup{}
	for id := 0; id < db.Workers(); id++ {
		done.Add(1)
		go func(id int) {
			defer done.Done()
			drive(id, db.Worker(id), stop)
		}(id)
	}
	return stop, done
}

// measure samples committed throughput over the measurement window; base is
// the telemetry snapshot taken as the window opens (nil if disabled).
func measure(db engine.DB, d Durations, reg *telemetry.Registry) (tps float64, base map[string]float64) {
	time.Sleep(d.Ramp)
	base = telemetryBase(reg)
	c0 := db.CommitsLive()
	t0 := time.Now()
	time.Sleep(d.Measure)
	c1 := db.CommitsLive()
	return float64(c1-c0) / time.Since(t0).Seconds(), base
}

func finish(db engine.DB, res *Result) {
	s := db.Stats()
	res.AbortRate = s.AbortRate()
	if s.BusyTime > 0 {
		res.AbortTimeFrac = float64(s.AbortTime) / float64(s.BusyTime)
	}
}

// TPCCOpts configures one TPC-C measurement.
type TPCCOpts struct {
	Warehouses int
	Threads    int
	NP         bool
	Phantom    bool // eager index updates + phantom avoidance (Fig 3) vs deferred (Fig 4)
	Scale      tpcc.Config
	Durations  Durations
	// OnStart runs after loading, just before the workers start (live
	// sampling hooks).
	OnStart func(db engine.DB)
	// Inspect runs after measurement with the db still loaded (space
	// overhead, staleness sampling).
	Inspect func(db engine.DB, res *Result)
}

// RunTPCC measures one engine on TPC-C.
func RunTPCC(name string, f engine.Factory, o TPCCOpts) Result {
	cfg := o.Scale
	cfg.Warehouses = o.Warehouses
	cfg.NP = o.NP
	reg := trialRegistry(o.Threads)
	tr := trialTracer(o.Threads, reg)
	db := f(engine.Config{Workers: o.Threads, PhantomAvoidance: o.Phantom,
		HashBucketsHint: cfg.Warehouses * cfg.Items, Metrics: reg, Trace: tr})
	w := tpcc.Setup(db, cfg)
	if err := w.Load(); err != nil {
		panic(fmt.Sprintf("tpcc load (%s): %v", name, err))
	}
	engine.WarmUp(db)
	runtime.GC() // keep loading garbage out of the measurement window
	if o.OnStart != nil {
		o.OnStart(db)
	}
	hists := make([]*latHist, o.Threads)
	stop, done := runLoop(db, func(id int, wk engine.Worker, stop <-chan struct{}) {
		g := w.NewGen(id)
		h := &latHist{}
		hists[id] = h
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if err := g.RunOne(wk); err != nil {
				if errors.Is(err, engine.ErrAborted) {
					continue // bounded-retry abort (e.g. peers stopping)
				}
				panic(fmt.Sprintf("tpcc (%s, worker %d): %v", name, id, err))
			}
			h.add(time.Since(t0))
		}
	})
	tps, telBase := measure(db, o.Durations, reg)
	close(stop)
	done.Wait()
	res := Result{Engine: name, Threads: o.Threads, TPS: tps}
	res.Extra = map[string]float64{
		"p50_us": float64(percentile(hists, 0.50)) / 1e3,
		"p99_us": float64(percentile(hists, 0.99)) / 1e3,
	}
	finish(db, &res)
	exportTelemetry(&res, reg, telBase)
	if o.Inspect != nil {
		o.Inspect(db, &res)
	}
	return res
}

// YCSBOpts configures one YCSB measurement.
type YCSBOpts struct {
	Threads   int
	Cfg       ycsb.Config
	Phantom   bool
	Durations Durations
	// CountScans adds a records-scanned/s metric.
	CountScans bool
	// Durable attaches a WAL (in a temp directory, removed afterwards) to
	// the engine and reports FsyncsPerTxn. The engine must be a Cicada
	// variant — the baselines have no durability hook.
	Durable bool
	// Inspect runs after measurement with the db still loaded.
	Inspect func(db engine.DB, res *Result)
}

// RunYCSB measures one engine on YCSB.
func RunYCSB(name string, f engine.Factory, o YCSBOpts) Result {
	reg := trialRegistry(o.Threads)
	tr := trialTracer(o.Threads, reg)
	db := f(engine.Config{Workers: o.Threads, PhantomAvoidance: o.Phantom,
		HashBucketsHint: o.Cfg.Records, Metrics: reg, Trace: tr})
	var walM *wal.Manager
	if o.Durable {
		ep, ok := db.(interface{ Engine() *core.Engine })
		if !ok {
			panic(fmt.Sprintf("ycsb (%s): Durable requires a Cicada engine", name))
		}
		walDir, err := os.MkdirTemp("", "cicada-bench-wal-")
		if err != nil {
			panic(fmt.Sprintf("ycsb (%s): wal dir: %v", name, err))
		}
		defer os.RemoveAll(walDir)
		m, err := wal.Attach(ep.Engine(), wal.Options{Dir: walDir})
		if err != nil {
			panic(fmt.Sprintf("ycsb (%s): wal attach: %v", name, err))
		}
		walM = m
		defer walM.Close()
	}
	w := ycsb.Setup(db, o.Cfg)
	if err := w.Load(); err != nil {
		panic(fmt.Sprintf("ycsb load (%s): %v", name, err))
	}
	engine.WarmUp(db)
	runtime.GC()
	gens := make([]*ycsb.Gen, o.Threads)
	hists := make([]*latHist, o.Threads)
	stop, done := runLoop(db, func(id int, wk engine.Worker, stop <-chan struct{}) {
		g := w.NewGen(id)
		gens[id] = g
		h := &latHist{}
		hists[id] = h
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if err := g.RunOne(wk); err != nil {
				if errors.Is(err, engine.ErrAborted) {
					continue
				}
				panic(fmt.Sprintf("ycsb (%s, worker %d): %v", name, id, err))
			}
			h.add(time.Since(t0))
		}
	})
	var scanned0 uint64
	readScanned := func() uint64 {
		var n uint64
		for _, g := range gens {
			if g != nil {
				n += g.Scanned
			}
		}
		return n
	}
	time.Sleep(o.Durations.Ramp)
	telBase := telemetryBase(reg)
	c0 := db.CommitsLive()
	if o.CountScans {
		scanned0 = readScanned()
	}
	var fsyncs0 uint64
	if walM != nil {
		fsyncs0 = walM.Fsyncs()
	}
	var mem0, mem1 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	time.Sleep(o.Durations.Measure)
	c1 := db.CommitsLive()
	runtime.ReadMemStats(&mem1)
	elapsed := time.Since(t0).Seconds()
	var scanRate float64
	if o.CountScans {
		// Racy reads of per-gen counters: acceptable for measurement.
		scanRate = float64(readScanned()-scanned0) / elapsed
	}
	close(stop)
	done.Wait()
	res := Result{Engine: name, Threads: o.Threads, TPS: float64(c1-c0) / elapsed}
	if commits := c1 - c0; commits > 0 {
		// Process-wide mallocs over commits: a coarse but comparable
		// allocation-pressure figure (the workers dominate the process).
		res.AllocsPerTxn = float64(mem1.Mallocs-mem0.Mallocs) / float64(commits)
		if walM != nil {
			res.FsyncsPerTxn = float64(walM.Fsyncs()-fsyncs0) / float64(commits)
		}
	}
	res.Extra = map[string]float64{
		"p50_us": float64(percentile(hists, 0.50)) / 1e3,
		"p99_us": float64(percentile(hists, 0.99)) / 1e3,
	}
	if o.CountScans {
		res.Extra["records_scanned_per_s"] = scanRate
	}
	finish(db, &res)
	exportTelemetry(&res, reg, telBase)
	if o.Inspect != nil {
		o.Inspect(db, &res)
	}
	return res
}

// WriteCSV appends results to w as CSV rows:
// experiment,engine,threads,param,tps,abort_rate,abort_time_frac,extras...
// Telemetry values, when collected, follow the extras as tel:name=value
// pairs.
func WriteCSV(w io.Writer, results []Result) {
	for _, r := range results {
		fmt.Fprintf(w, "%s,%s,%d,%g,%.1f,%.4f,%.4f", r.Experiment, r.Engine, r.Threads, r.Param, r.TPS, r.AbortRate, r.AbortTimeFrac)
		keys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, ",%s=%.2f", k, r.Extra[k])
		}
		telKeys := make([]string, 0, len(r.Telemetry))
		for k := range r.Telemetry {
			telKeys = append(telKeys, k)
		}
		sort.Strings(telKeys)
		for _, k := range telKeys {
			fmt.Fprintf(w, ",tel:%s=%g", k, r.Telemetry[k])
		}
		fmt.Fprintln(w)
	}
}

// PrintTable renders results grouped like the paper's figures: one row per
// engine, one column per swept value.
func PrintTable(out io.Writer, title, paramName string, results []Result) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
	byEngine := map[string][]Result{}
	var params []float64
	seen := map[float64]bool{}
	var engines []string
	seenEng := map[string]bool{}
	for _, r := range results {
		byEngine[r.Engine] = append(byEngine[r.Engine], r)
		key := r.Param
		if paramName == "threads" {
			key = float64(r.Threads)
		}
		if !seen[key] {
			seen[key] = true
			params = append(params, key)
		}
		if !seenEng[r.Engine] {
			seenEng[r.Engine] = true
			engines = append(engines, r.Engine)
		}
	}
	sort.Float64s(params)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "engine")
	for _, p := range params {
		fmt.Fprintf(tw, "\t%s=%g", paramName, p)
	}
	fmt.Fprintln(tw)
	for _, eng := range engines {
		fmt.Fprintf(tw, "%s", eng)
		for _, p := range params {
			var cell string
			for _, r := range byEngine[eng] {
				key := r.Param
				if paramName == "threads" {
					key = float64(r.Threads)
				}
				if key == p {
					cell = fmt.Sprintf("%.0f tps (%.0f%% ab)", r.TPS, 100*r.AbortRate)
					break
				}
			}
			fmt.Fprintf(tw, "\t%s", cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
