package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cicada/internal/engine"
	"cicada/internal/workload/tatp"
)

// TATPOpts configures one TATP measurement.
type TATPOpts struct {
	Threads   int
	Cfg       tatp.Config
	Durations Durations
}

// RunTATP measures one engine on the TATP mix (Appendix B).
func RunTATP(name string, f engine.Factory, o TATPOpts) Result {
	reg := trialRegistry(o.Threads)
	db := f(engine.Config{Workers: o.Threads, PhantomAvoidance: true,
		HashBucketsHint: o.Cfg.Subscribers, Metrics: reg})
	w := tatp.Setup(db, o.Cfg)
	if err := w.Load(); err != nil {
		panic(fmt.Sprintf("tatp load (%s): %v", name, err))
	}
	engine.WarmUp(db)
	runtime.GC()
	var direct uint64
	var mu sync.Mutex
	stop, done := runLoop(db, func(id int, wk engine.Worker, stop <-chan struct{}) {
		g := w.NewGen(id)
		for {
			select {
			case <-stop:
				mu.Lock()
				direct += g.DirectReads
				mu.Unlock()
				return
			default:
			}
			if err := g.RunOne(wk); err != nil {
				if errors.Is(err, engine.ErrAborted) {
					continue
				}
				panic(fmt.Sprintf("tatp (%s, worker %d): %v", name, id, err))
			}
		}
	})
	time.Sleep(o.Durations.Ramp)
	telBase := telemetryBase(reg)
	c0 := db.CommitsLive()
	t0 := time.Now()
	time.Sleep(o.Durations.Measure)
	c1 := db.CommitsLive()
	elapsed := time.Since(t0).Seconds()
	close(stop)
	done.Wait()
	res := Result{Engine: name, Threads: o.Threads, TPS: float64(c1-c0) / elapsed}
	finish(db, &res)
	// GetSubscriberData's record read bypasses the transaction in direct
	// mode (the tiny index-lookup transaction is still counted in TPS);
	// report how many reads took the direct path.
	wholeRun := (o.Durations.Ramp + o.Durations.Measure).Seconds()
	res.Extra = map[string]float64{"direct_reads_per_s": float64(direct) / wholeRun}
	exportTelemetry(&res, reg, telBase)
	return res
}

// TATP compares the engines on the TATP mix, plus Cicada with the
// transaction-less direct-read optimization enabled (Appendix B).
func TATP(s Scale) []Result {
	cfg := tatp.DefaultConfig()
	if s.YCSB.Records < cfg.Subscribers {
		cfg.Subscribers = s.YCSB.Records
	}
	var out []Result
	for _, name := range s.Engines {
		out = append(out, RunTATP(name, Factory(name), TATPOpts{
			Threads: s.MaxThreads, Cfg: cfg, Durations: s.Dur,
		}))
	}
	direct := cfg
	direct.DirectRead = true
	out = append(out, RunTATP("Cicada/direct-read", CicadaFactory(nil), TATPOpts{
		Threads: s.MaxThreads, Cfg: direct, Durations: s.Dur,
	}))
	return tag(out, "tatp")
}
