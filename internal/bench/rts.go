package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
)

// rtsBench compares conditional read-timestamp updates (Cicada's validation
// step 2, §3.4) against unconditional atomic fetch-adds on a single shared
// record. The paper's 28-core testbed reaches 2.3 B conditional updates/s
// versus 55 M fetch-adds/s; the conditional write is cheap because a read
// timestamp already ≥ tx.ts writes nothing.
func rtsBench(workers int, dur time.Duration) (conditionalOps, fetchAddOps float64) {
	run := func(op func(id int, iter uint64)) float64 {
		var stop atomic.Bool
		counts := make([]uint64, workers*8) // padded slots
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				var n uint64
				for !stop.Load() {
					op(id, n)
					n++
				}
				counts[id*8] = n
			}(id)
		}
		t0 := time.Now()
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		var total uint64
		for i := 0; i < workers; i++ {
			total += counts[i*8]
		}
		return float64(total) / elapsed
	}

	v := storage.NewVersion(8)
	conditionalOps = run(func(id int, iter uint64) {
		// Workers mostly observe an rts already at or above their target,
		// so the CAS is skipped — the common case in validation.
		v.RaiseRTS(clock.Timestamp(iter))
	})
	var counter atomic.Uint64
	fetchAddOps = run(func(id int, iter uint64) {
		counter.Add(1)
	})
	return conditionalOps, fetchAddOps
}
