package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cicada/internal/cicadaeng"
	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/engine"
	"cicada/internal/workload/tpcc"
	"cicada/internal/workload/ycsb"
)

// Scale bundles the sweep parameters for every experiment so that tests,
// testing.B benchmarks, and cmd/cicada-bench share one definition. The
// paper's testbed values are noted next to each field; DefaultScale fits a
// small machine and EXPERIMENTS.md records the mapping.
type Scale struct {
	// Threads is the thread sweep (paper: 1..28).
	Threads []int
	// MaxThreads is used by skew/size sweeps (paper: 28).
	MaxThreads int
	// Engines selects the schemes to compare.
	Engines []string
	// TPCC is the base TPC-C scale (Items is reduced from the spec's
	// 100 000 by default; pass the full value for spec-scale runs).
	TPCC tpcc.Config
	// YCSB is the base YCSB configuration (paper: 10 M × 100 B records).
	YCSB ycsb.Config
	// Skews is the Zipf sweep for Figures 6b/6c/11 (paper: 0–0.99).
	Skews []float64
	// RecordSizes is the Figure 8 sweep (paper: up to 2000 B).
	RecordSizes []int
	// GCIntervals is the Figure 9 sweep (paper: 10 µs–100 ms).
	GCIntervals []time.Duration
	// Backoffs is the Figure 10 manual sweep.
	Backoffs []time.Duration
	// Dur is the per-point measurement length.
	Dur Durations
}

// DefaultScale returns a laptop-scale configuration covering every sweep.
func DefaultScale() Scale {
	t := tpcc.DefaultConfig(1)
	t.Items = 10_000
	t.InitialOrdersPerDistrict = 300
	t.CustomersPerDistrict = 600
	y := ycsb.DefaultConfig()
	y.Records = 200_000
	return Scale{
		Threads:     []int{1, 2, 4},
		MaxThreads:  4,
		Engines:     EngineNames,
		TPCC:        t,
		YCSB:        y,
		Skews:       []float64{0, 0.4, 0.6, 0.8, 0.9, 0.99},
		RecordSizes: []int{8, 24, 64, 100, 216, 512, 1000, 2000},
		GCIntervals: []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond},
		Backoffs:    []time.Duration{0, time.Microsecond, 5 * time.Microsecond, 20 * time.Microsecond, 100 * time.Microsecond, time.Millisecond},
		Dur:         DefaultDurations,
	}
}

func tag(results []Result, exp string) []Result {
	for i := range results {
		results[i].Experiment = exp
	}
	sort.SliceStable(results, func(a, b int) bool {
		if results[a].Engine != results[b].Engine {
			return results[a].Engine < results[b].Engine
		}
		if results[a].Threads != results[b].Threads {
			return results[a].Threads < results[b].Threads
		}
		return results[a].Param < results[b].Param
	})
	return results
}

// tpccWarehouses resolves the warehouse count for a Figure 3/4 variant:
// 'a' = 1 warehouse, 'b' = 4 warehouses, 'c' = warehouses = threads.
func tpccWarehouses(sub byte, threads int) int {
	switch sub {
	case 'a':
		return 1
	case 'b':
		return 4
	default:
		return threads
	}
}

// Fig3 reproduces Figure 3: TPC-C full mix with eager index updates and
// phantom avoidance, thread sweep.
func Fig3(sub byte, s Scale) []Result {
	var out []Result
	for _, name := range s.Engines {
		for _, th := range s.Threads {
			out = append(out, RunTPCC(name, Factory(name), TPCCOpts{
				Warehouses: tpccWarehouses(sub, th), Threads: th,
				Phantom: true, Scale: s.TPCC, Durations: s.Dur,
			}))
		}
	}
	return tag(out, "fig3"+string(sub))
}

// Fig4 reproduces Figure 4: TPC-C with deferred index updates and no
// phantom avoidance (Cicada uses single-version indexes here, like the
// other schemes).
func Fig4(sub byte, s Scale) []Result {
	var out []Result
	for _, name := range s.Engines {
		for _, th := range s.Threads {
			out = append(out, RunTPCC(name, Factory(name), TPCCOpts{
				Warehouses: tpccWarehouses(sub, th), Threads: th,
				Phantom: false, Scale: s.TPCC, Durations: s.Dur,
			}))
		}
	}
	return tag(out, "fig4"+string(sub))
}

// Fig5 reproduces Figure 5: TPC-C-NP (NewOrder + Payment only).
func Fig5(sub byte, s Scale) []Result {
	var out []Result
	for _, name := range s.Engines {
		for _, th := range s.Threads {
			out = append(out, RunTPCC(name, Factory(name), TPCCOpts{
				Warehouses: tpccWarehouses(sub, th), Threads: th, NP: true,
				Phantom: false, Scale: s.TPCC, Durations: s.Dur,
			}))
		}
	}
	return tag(out, "fig5"+string(sub))
}

// Fig6 reproduces Figure 6: YCSB with 16 requests/transaction.
// 'a' = write-intensive zipf-0.99 thread sweep; 'b' = write-intensive skew
// sweep; 'c' = read-intensive skew sweep.
func Fig6(sub byte, s Scale) []Result {
	var out []Result
	base := s.YCSB
	base.ReqsPerTx = 16
	switch sub {
	case 'a':
		base.ReadRatio = 0.5
		base.Theta = 0.99
		for _, name := range s.Engines {
			for _, th := range s.Threads {
				out = append(out, RunYCSB(name, Factory(name), YCSBOpts{
					Threads: th, Cfg: base, Phantom: true, Durations: s.Dur,
				}))
			}
		}
	default:
		if sub == 'b' {
			base.ReadRatio = 0.5
		} else {
			base.ReadRatio = 0.95
		}
		for _, name := range s.Engines {
			for _, skew := range s.Skews {
				cfg := base
				cfg.Theta = skew
				r := RunYCSB(name, Factory(name), YCSBOpts{
					Threads: s.MaxThreads, Cfg: cfg, Phantom: true, Durations: s.Dur,
				})
				r.Param = skew
				out = append(out, r)
			}
		}
	}
	return tag(out, "fig6"+string(sub))
}

// Scaling is the multi-core scalability runner: for each engine it sweeps
// the thread counts on YCSB (16 requests/transaction, write-intensive) at
// uniform and high skew, producing the tps-vs-threads curves that WriteJSON
// folds into the report's "scalability" section. Param carries the Zipf
// theta so the two curves stay distinguishable. Every point records
// AllocsPerTxn; a "Cicada/WAL" curve runs the same sweep with a WAL
// attached, adding FsyncsPerTxn (the group-commit amortization per thread
// count).
func Scaling(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 16
	cfg.ReadRatio = 0.5
	var out []Result
	run := func(name string, f engine.Factory, durable bool) {
		for _, skew := range []float64{0, 0.99} {
			for _, th := range s.Threads {
				c := cfg
				c.Theta = skew
				r := RunYCSB(name, f, YCSBOpts{
					Threads: th, Cfg: c, Phantom: true, Durations: s.Dur,
					Durable: durable,
				})
				r.Param = skew
				out = append(out, r)
			}
		}
	}
	for _, name := range s.Engines {
		run(name, Factory(name), false)
		if name == "Cicada" {
			run("Cicada/WAL", CicadaFactory(nil), true)
		}
	}
	return tag(out, "scaling")
}

// Fig7 reproduces the multi-clock factor analysis (§4.6, Figure 7): tiny
// read-intensive YCSB transactions on Cicada, Cicada with a centralized
// timestamp counter, and the centralized-timestamp MVCC baselines.
func Fig7(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 1
	cfg.ReadRatio = 0.95
	cfg.Theta = 0.99
	var out []Result
	variants := []struct {
		name string
		f    engine.Factory
	}{
		{"Cicada", CicadaFactory(nil)},
		{"Cicada/FAA-clock", CicadaFactory(func(o *core.Options) { o.Clock.Centralized = true })},
		{"Hekaton", Factory("Hekaton")},
		{"ERMIA", Factory("ERMIA")},
		{"Silo'", Factory("Silo'")},
		{"TicToc", Factory("TicToc")},
	}
	for _, v := range variants {
		for _, th := range s.Threads {
			out = append(out, RunYCSB(v.name, v.f, YCSBOpts{
				Threads: th, Cfg: cfg, Phantom: true, Durations: s.Dur,
			}))
		}
	}
	return tag(out, "fig7")
}

// Fig8 reproduces Figure 8: read-intensive uniform YCSB with varying record
// size, comparing Cicada with and without best-effort inlining against the
// baselines.
func Fig8(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 16
	cfg.ReadRatio = 0.95
	cfg.Theta = 0
	variants := []struct {
		name string
		f    engine.Factory
	}{
		{"Cicada", CicadaFactory(nil)},
		{"Cicada/no-inline", CicadaFactory(func(o *core.Options) { o.Inlining = false })},
	}
	for _, name := range s.Engines {
		if name == "Silo'" || name == "TicToc" {
			variants = append(variants, struct {
				name string
				f    engine.Factory
			}{name, Factory(name)})
		}
	}
	var out []Result
	for _, v := range variants {
		for _, size := range s.RecordSizes {
			c := cfg
			c.RecordSize = size
			r := RunYCSB(v.name, v.f, YCSBOpts{
				Threads: s.MaxThreads, Cfg: c, Phantom: true, Durations: s.Dur,
			})
			r.Param = float64(size)
			out = append(out, r)
		}
	}
	return tag(out, "fig8")
}

// Fig9 reproduces Figure 9: TPC-C throughput under different minimum
// quiescence (garbage collection) intervals, plus the space overhead
// metric.
func Fig9(s Scale) []Result {
	var out []Result
	warehouses := []int{1, 4, s.MaxThreads}
	seen := map[int]bool{}
	dedup := warehouses[:0]
	for _, wh := range warehouses {
		if !seen[wh] {
			seen[wh] = true
			dedup = append(dedup, wh)
		}
	}
	warehouses = dedup
	for _, wh := range warehouses {
		for _, ival := range s.GCIntervals {
			ival := ival
			f := CicadaFactory(func(o *core.Options) { o.GCInterval = ival })
			r := RunTPCC(fmt.Sprintf("Cicada/%dwh", wh), f, TPCCOpts{
				Warehouses: wh, Threads: s.MaxThreads,
				Phantom: true, Scale: s.TPCC, Durations: s.Dur,
				Inspect: func(db engine.DB, res *Result) {
					// Let maintenance drain at its configured cadence before
					// measuring the footprint; a long GC interval still
					// gates collection here, preserving the experiment's
					// contrast (as in the paper, overhead is steady-state).
					engine.WarmUp(db)
					if cd, ok := db.(*cicadaeng.DB); ok {
						if res.Extra == nil {
							res.Extra = map[string]float64{}
						}
						res.Extra["space_overhead"] = cd.Engine().SpaceOverhead()
					}
				},
			})
			r.Param = float64(ival) / float64(time.Microsecond)
			out = append(out, r)
		}
	}
	return tag(out, "fig9")
}

// Fig10 reproduces Figure 10: throughput and abort time under contention
// regulation (auto) versus fixed maximum backoff, for contended TPC-C,
// TPC-C-NP, and single-request write-intensive YCSB. which selects
// "tpcc", "tpccnp", or "ycsb".
func Fig10(which string, s Scale) []Result {
	var out []Result
	run := func(label string, backoff time.Duration, auto bool) Result {
		mut := func(o *core.Options) {
			if !auto {
				o.FixedMaxBackoff = backoff
			}
		}
		f := CicadaFactory(mut)
		var r Result
		switch which {
		case "ycsb":
			cfg := s.YCSB
			cfg.ReqsPerTx = 1
			cfg.ReadRatio = 0.5
			cfg.Theta = 0.99
			r = RunYCSB(label, f, YCSBOpts{Threads: s.MaxThreads, Cfg: cfg, Phantom: true, Durations: s.Dur})
		case "tpccnp":
			r = RunTPCC(label, f, TPCCOpts{Warehouses: 4, Threads: s.MaxThreads, NP: true, Phantom: false, Scale: s.TPCC, Durations: s.Dur})
		default:
			r = RunTPCC(label, f, TPCCOpts{Warehouses: 4, Threads: s.MaxThreads, Phantom: true, Scale: s.TPCC, Durations: s.Dur})
		}
		if auto {
			r.Param = -1 // rendered as the "auto" point
		} else {
			r.Param = float64(backoff) / float64(time.Microsecond)
		}
		return r
	}
	out = append(out, run("Cicada/auto", 0, true))
	for _, b := range s.Backoffs {
		out = append(out, run("Cicada/manual", b, false))
	}
	return tag(out, "fig10-"+which)
}

// Fig11 reproduces Figure 11 (Appendix B): YCSB with a single request per
// transaction. 'a'/'b' write-intensive (skew sweep, thread sweep);
// 'c'/'d' read-intensive.
func Fig11(sub byte, s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 1
	if sub == 'a' || sub == 'b' {
		cfg.ReadRatio = 0.5
	} else {
		cfg.ReadRatio = 0.95
	}
	var out []Result
	if sub == 'a' || sub == 'c' {
		for _, name := range s.Engines {
			for _, skew := range s.Skews {
				c := cfg
				c.Theta = skew
				r := RunYCSB(name, Factory(name), YCSBOpts{
					Threads: s.MaxThreads, Cfg: c, Phantom: true, Durations: s.Dur,
				})
				r.Param = skew
				out = append(out, r)
			}
		}
	} else {
		cfg.Theta = 0.99
		for _, name := range s.Engines {
			for _, th := range s.Threads {
				out = append(out, RunYCSB(name, Factory(name), YCSBOpts{
					Threads: th, Cfg: cfg, Phantom: true, Durations: s.Dur,
				}))
			}
		}
	}
	return tag(out, "fig11"+string(sub))
}

// Skew validates adaptive contention management (docs/PERFORMANCE.md):
// write-intensive YCSB with 16 requests/transaction at MaxThreads, sweeping
// Zipf theta, comparing Cicada's heat-driven per-record adaptation against
// the same engine with heat tracking disabled ("Cicada/no-adapt"). Each
// point records the per-reason abort taxonomy and the heat counters in
// Extra so the skew-adaptive CI gate can compare the two variants.
func Skew(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 16
	cfg.ReadRatio = 0.5
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"Cicada", nil},
		{"Cicada/no-adapt", func(o *core.Options) { o.NoHeatTracking = true }},
	}
	var out []Result
	for _, v := range variants {
		for _, skew := range s.Skews {
			c := cfg
			c.Theta = skew
			r := RunYCSB(v.name, CicadaFactory(v.mut), YCSBOpts{
				Threads: s.MaxThreads, Cfg: c, Phantom: true, Durations: s.Dur,
				Inspect: inspectHeat,
			})
			r.Param = skew
			out = append(out, r)
		}
	}
	return tag(out, "skew")
}

// inspectHeat exports the Cicada abort taxonomy and heat counters into
// Result.Extra. Counts are cumulative over the whole trial (ramp included),
// so "total_commits" rides along for per-commit normalization.
func inspectHeat(db engine.DB, res *Result) {
	cd, ok := db.(*cicadaeng.DB)
	if !ok {
		return
	}
	s := cd.Engine().Stats()
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	for r := core.AbortReason(0); r < core.NumAbortReasons; r++ {
		if n := s.AbortsByReason[r]; n > 0 {
			res.Extra["aborts_"+r.String()] = float64(n)
		}
	}
	res.Extra["total_commits"] = float64(s.Commits)
	res.Extra["heat_abort_bumps"] = float64(s.HeatAbortBumps)
	res.Extra["heat_wait_bumps"] = float64(s.HeatWaitBumps)
	res.Extra["heat_forced_checks"] = float64(s.HeatForcedChecks)
	res.Extra["heat_scaled_backoffs"] = float64(s.HeatScaledBackoffs)
	res.Extra["heat_rts_coarse"] = float64(s.HeatRTSCoarse)
	res.Extra["heat_rts_skips"] = float64(s.HeatRTSSkips)
}

// Table2 reproduces Table 2: the throughput difference from disabling each
// validation optimization on contended YCSB (16 requests/transaction, 50 %
// RMW, zipf 0.99).
func Table2(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 16
	cfg.ReadRatio = 0.5
	cfg.Theta = 0.99
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"Cicada", nil},
		{"No-wait", func(o *core.Options) { o.NoWaitPending = true }},
		{"No-latest", func(o *core.Options) { o.NoWriteLatestRule = true }},
		{"No-sort", func(o *core.Options) { o.NoSortWriteSet = true }},
		{"No-precheck", func(o *core.Options) { o.NoPreCheck = true }},
	}
	var out []Result
	for _, v := range variants {
		out = append(out, RunYCSB(v.name, CicadaFactory(v.mut), YCSBOpts{
			Threads: s.MaxThreads, Cfg: cfg, Phantom: true, Durations: s.Dur,
		}))
	}
	return tag(out, "table2")
}

// ScanBench reproduces the §4.6 scan measurement: read-intensive YCSB with
// scans executed as read-only transactions, with and without inlining,
// reporting records scanned per second.
func ScanBench(s Scale) []Result {
	cfg := s.YCSB
	cfg.ReqsPerTx = 1
	cfg.ReadRatio = 0.95
	cfg.Theta = 0.99
	cfg.ScanFraction = 0.5
	cfg.Ordered = true
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"Cicada", nil},
		{"Cicada/no-inline", func(o *core.Options) { o.Inlining = false }},
	}
	var out []Result
	for _, v := range variants {
		out = append(out, RunYCSB(v.name, CicadaFactory(v.mut), YCSBOpts{
			Threads: s.MaxThreads, Cfg: cfg, Phantom: true, Durations: s.Dur,
			CountScans: true,
		}))
	}
	return tag(out, "scan")
}

// Staleness measures read-only snapshot staleness during a TPC-C run
// (§4.6): the clock distance between a worker's current write timestamp
// and its read-only snapshot timestamp, sampled every 500 µs while the
// workload runs (the clock atomics are safe to read from the sampler).
func Staleness(s Scale) []Result {
	var out []Result
	threads := []int{1}
	if s.MaxThreads > 1 {
		threads = append(threads, s.MaxThreads)
	}
	for _, th := range threads {
		out = append(out, stalenessAt(s, th))
	}
	return tag(out, "staleness")
}

func stalenessAt(s Scale, threads int) Result {
	var samples []float64
	var sampleMu sync.Mutex
	sampling := make(chan struct{})
	var sampler sync.WaitGroup
	r := RunTPCC(fmt.Sprintf("Cicada/%dthr", threads), CicadaFactory(nil), TPCCOpts{
		Warehouses: 4, Threads: threads, Phantom: true,
		Scale: s.TPCC, Durations: s.Dur,
		OnStart: func(db engine.DB) {
			cd, ok := db.(*cicadaeng.DB)
			if !ok {
				return
			}
			dom := cd.Engine().Clock()
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				tick := time.NewTicker(500 * time.Microsecond)
				defer tick.Stop()
				for {
					select {
					case <-sampling:
						return
					case <-tick.C:
						sampleMu.Lock()
						for id := 0; id < db.Workers(); id++ {
							w := dom.WTS(id)
							rts := dom.ReadTimestamp(id)
							if w.ClockValue() > rts.ClockValue() {
								samples = append(samples, float64(w.ClockValue()-rts.ClockValue()))
							}
						}
						sampleMu.Unlock()
					}
				}
			}()
		},
	})
	close(sampling)
	sampler.Wait()
	sort.Float64s(samples)
	if len(samples) > 0 {
		var sum float64
		for _, v := range samples {
			sum += v
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra["staleness_avg_us"] = sum / float64(len(samples)) / 1000
		r.Extra["staleness_p999_us"] = samples[p999Index(len(samples))] / 1000
		r.Extra["staleness_max_us"] = samples[len(samples)-1] / 1000
	}
	return r
}

// RTSUpdateBench measures the §3.4 claim that conditional read-timestamp
// updates on one record vastly outpace unconditional atomic fetch-adds. It
// returns operations/second for both modes.
func RTSUpdateBench(workers int, dur time.Duration) (conditionalOps, fetchAddOps float64) {
	return rtsBench(workers, dur)
}

var _ = clock.Timestamp(0) // keep clock import for staleness sampling

// p999Index returns the index of the 99.9th-percentile sample.
func p999Index(n int) int {
	i := int(float64(n) * 0.999)
	if i >= n {
		i = n - 1
	}
	return i
}
