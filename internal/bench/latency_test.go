package bench

import (
	"testing"
	"time"
)

func TestLatencyHistogramPercentiles(t *testing.T) {
	h := &latHist{}
	// 90 fast ops (~1 µs), 10 slow ops (~1 ms).
	for i := 0; i < 90; i++ {
		h.add(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.add(time.Millisecond)
	}
	p50 := percentile([]*latHist{h}, 0.50)
	p99 := percentile([]*latHist{h}, 0.99)
	if p50 > 10*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < 500*time.Microsecond || p99 > 5*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestLatencyHistogramMerge(t *testing.T) {
	a, b := &latHist{}, &latHist{}
	for i := 0; i < 100; i++ {
		a.add(time.Microsecond)
		b.add(time.Millisecond)
	}
	p50 := percentile([]*latHist{a, b}, 0.50)
	if p50 > 10*time.Microsecond {
		t.Fatalf("merged p50 = %v (fast half should dominate)", p50)
	}
	p99 := percentile([]*latHist{a, b, nil}, 0.99)
	if p99 < 500*time.Microsecond {
		t.Fatalf("merged p99 = %v", p99)
	}
}
