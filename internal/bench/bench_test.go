package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cicada/internal/workload/tpcc"
	"cicada/internal/workload/ycsb"
)

// tinyScale shrinks everything so the full experiment matrix smoke-tests in
// seconds.
func tinyScale() Scale {
	s := DefaultScale()
	s.Threads = []int{2}
	s.MaxThreads = 2
	s.Engines = []string{"Cicada", "Silo'"}
	s.TPCC = tpcc.SmallConfig(1)
	y := ycsb.DefaultConfig()
	y.Records = 5000
	s.YCSB = y
	s.Skews = []float64{0, 0.99}
	s.RecordSizes = []int{8, 216}
	s.GCIntervals = []time.Duration{10 * time.Microsecond, time.Millisecond}
	s.Backoffs = []time.Duration{0, 10 * time.Microsecond}
	s.Dur = Durations{Ramp: 20 * time.Millisecond, Measure: 60 * time.Millisecond}
	return s
}

func checkResults(t *testing.T, rs []Result, wantLen int) {
	t.Helper()
	if len(rs) != wantLen {
		t.Fatalf("got %d results, want %d", len(rs), wantLen)
	}
	for _, r := range rs {
		if r.TPS <= 0 {
			t.Errorf("%s %s threads=%d param=%g: tps %f", r.Experiment, r.Engine, r.Threads, r.Param, r.TPS)
		}
		if r.AbortRate < 0 || r.AbortRate > 1 {
			t.Errorf("%s %s: abort rate %f", r.Experiment, r.Engine, r.AbortRate)
		}
	}
}

func TestFig3Smoke(t *testing.T) {
	s := tinyScale()
	checkResults(t, Fig3('a', s), 2)
}

func TestFig4Smoke(t *testing.T) {
	s := tinyScale()
	checkResults(t, Fig4('b', s), 2)
}

func TestFig5Smoke(t *testing.T) {
	s := tinyScale()
	checkResults(t, Fig5('a', s), 2)
}

func TestFig6Smoke(t *testing.T) {
	s := tinyScale()
	checkResults(t, Fig6('a', s), 2)
	checkResults(t, Fig6('c', s), 4)
}

func TestFig7Smoke(t *testing.T) {
	s := tinyScale()
	rs := Fig7(s)
	checkResults(t, rs, 6)
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Engine] = true
	}
	if !names["Cicada/FAA-clock"] {
		t.Fatal("centralized-clock variant missing")
	}
}

func TestFig8Smoke(t *testing.T) {
	s := tinyScale()
	rs := Fig8(s)
	checkResults(t, rs, 6) // (Cicada, Cicada/no-inline, Silo') × 2 sizes
}

func TestFig9Smoke(t *testing.T) {
	s := tinyScale()
	rs := Fig9(s)
	checkResults(t, rs, 6) // 3 warehouse settings × 2 intervals
	for _, r := range rs {
		if _, ok := r.Extra["space_overhead"]; !ok {
			t.Fatalf("missing space overhead: %+v", r)
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	s := tinyScale()
	rs := Fig10("ycsb", s)
	checkResults(t, rs, 3) // auto + 2 manual
	hasAuto := false
	for _, r := range rs {
		if r.Param == -1 {
			hasAuto = true
		}
	}
	if !hasAuto {
		t.Fatal("auto point missing")
	}
}

func TestFig11Smoke(t *testing.T) {
	s := tinyScale()
	checkResults(t, Fig11('a', s), 4)
}

func TestTable2Smoke(t *testing.T) {
	s := tinyScale()
	rs := Table2(s)
	checkResults(t, rs, 5)
}

func TestScanBenchSmoke(t *testing.T) {
	s := tinyScale()
	rs := ScanBench(s)
	checkResults(t, rs, 2)
	for _, r := range rs {
		if r.Extra["records_scanned_per_s"] <= 0 {
			t.Fatalf("no scan rate: %+v", r)
		}
	}
}

func TestStalenessSmoke(t *testing.T) {
	s := tinyScale()
	rs := Staleness(s)
	if len(rs) != 2 {
		t.Fatalf("staleness rows: %+v", rs)
	}
	for _, r := range rs {
		if r.Extra["staleness_avg_us"] <= 0 {
			t.Fatalf("staleness: %+v", r)
		}
	}
	// Single-threaded staleness is protocol-bound (microseconds); it must
	// be far below the scheduling-bound multi-worker figure.
	if rs[0].Extra["staleness_avg_us"] > 10_000 {
		t.Fatalf("1-thread staleness too high: %+v", rs[0])
	}
}

func TestRTSBench(t *testing.T) {
	cond, faa := RTSUpdateBench(2, 30*time.Millisecond)
	if cond <= 0 || faa <= 0 {
		t.Fatalf("cond=%f faa=%f", cond, faa)
	}
	t.Logf("conditional rts updates: %.0f/s, fetch-add: %.0f/s", cond, faa)
}

func TestPrintTable(t *testing.T) {
	var buf bytes.Buffer
	rs := []Result{
		{Engine: "Cicada", Threads: 1, TPS: 1000},
		{Engine: "Cicada", Threads: 2, TPS: 1800},
		{Engine: "Silo'", Threads: 1, TPS: 900},
	}
	PrintTable(&buf, "demo", "threads", rs)
	out := buf.String()
	if !strings.Contains(out, "Cicada") || !strings.Contains(out, "threads=2") {
		t.Fatalf("table output:\n%s", out)
	}
}
