package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file backs the CI bench-compare gate (cmd/bench-compare): load a
// committed BENCH_*.json seed, pick one scalability curve out of it, and
// expose its per-thread speedup so a fresh run can be checked against it.

// LoadReport reads a BENCH_*.json perf-trajectory report. Older schema
// versions load fine — every schema bump so far has been additive — so the
// gate keeps working against seeds committed before the current version.
func LoadReport(path string) (*JSONReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep JSONReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Meta.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: not a bench report (no meta.schema_version)", path)
	}
	return &rep, nil
}

// FindCurve returns the report's scalability curve for the given
// (experiment, engine, param) key.
func FindCurve(rep *JSONReport, experiment, engine string, param float64) (*ScalabilityCurve, error) {
	for i := range rep.Scalability {
		c := &rep.Scalability[i]
		if c.Experiment == experiment && c.Engine == engine && c.Param == param {
			return c, nil
		}
	}
	return nil, fmt.Errorf("no scalability curve (experiment=%s, engine=%s, param=%g); have %d curves",
		experiment, engine, param, len(rep.Scalability))
}

// SpeedupAt returns the curve's speedup at the given thread count.
func SpeedupAt(c *ScalabilityCurve, threads int) (float64, error) {
	for _, p := range c.Points {
		if p.Threads == threads {
			if p.Speedup == 0 {
				return 0, fmt.Errorf("curve (%s, %s, %g) has no speedup at %d threads (no threads=1 base point)",
					c.Experiment, c.Engine, c.Param, threads)
			}
			return p.Speedup, nil
		}
	}
	return 0, fmt.Errorf("curve (%s, %s, %g) has no threads=%d point",
		c.Experiment, c.Engine, c.Param, threads)
}
