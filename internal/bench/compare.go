package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file backs the CI bench-compare gate (cmd/bench-compare): load a
// committed BENCH_*.json seed, pick one scalability curve out of it, and
// expose its per-thread speedup so a fresh run can be checked against it.

// LoadReport reads a BENCH_*.json perf-trajectory report. Older schema
// versions load fine — every schema bump so far has been additive — so the
// gate keeps working against seeds committed before the current version.
func LoadReport(path string) (*JSONReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep JSONReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Meta.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: not a bench report (no meta.schema_version)", path)
	}
	return &rep, nil
}

// FindCurve returns the report's scalability curve for the given
// (experiment, engine, param) key.
func FindCurve(rep *JSONReport, experiment, engine string, param float64) (*ScalabilityCurve, error) {
	for i := range rep.Scalability {
		c := &rep.Scalability[i]
		if c.Experiment == experiment && c.Engine == engine && c.Param == param {
			return c, nil
		}
	}
	return nil, fmt.Errorf("no scalability curve (experiment=%s, engine=%s, param=%g); have %d curves",
		experiment, engine, param, len(rep.Scalability))
}

// SpeedupAt returns the curve's speedup at the given thread count.
func SpeedupAt(c *ScalabilityCurve, threads int) (float64, error) {
	for _, p := range c.Points {
		if p.Threads == threads {
			if p.Speedup == 0 {
				return 0, fmt.Errorf("curve (%s, %s, %g) has no speedup at %d threads (no threads=1 base point)",
					c.Experiment, c.Engine, c.Param, threads)
			}
			return p.Speedup, nil
		}
	}
	return 0, fmt.Errorf("curve (%s, %s, %g) has no threads=%d point",
		c.Experiment, c.Engine, c.Param, threads)
}

// FindSkewCurve returns the report's skew curve for the given engine.
func FindSkewCurve(rep *JSONReport, engine string) (*SkewCurve, error) {
	for i := range rep.Skew {
		if rep.Skew[i].Engine == engine {
			return &rep.Skew[i], nil
		}
	}
	return nil, fmt.Errorf("no skew curve for engine %s; have %d curves", engine, len(rep.Skew))
}

// SkewAdaptiveGate checks a fresh "skew" run for the adaptive-contention
// result (docs/PERFORMANCE.md): at the highest measured theta, the adaptive
// engine's throughput must be at least slack × the non-adaptive engine's,
// and its validation + rts_early abort rate (per commit) must not exceed
// the non-adaptive engine's by more than 1/slack. Comparing the two
// variants within one run makes the gate robust to runner speed. It returns
// a one-line summary for logging and a non-nil error on gate failure.
func SkewAdaptiveGate(results []Result, slack float64) (string, error) {
	theta := -1.0
	for _, r := range results {
		if r.Experiment == "skew" && r.Param > theta {
			theta = r.Param
		}
	}
	if theta < 0 {
		return "", fmt.Errorf("no skew results")
	}
	// When the caller ran repeated trials (bench-compare does), compare each
	// engine's best trial: best-vs-best cancels scheduler noise on small
	// runners without favoring either variant.
	find := func(engine string) (*Result, error) {
		var best *Result
		for i := range results {
			r := &results[i]
			if r.Experiment == "skew" && r.Engine == engine && r.Param == theta {
				if best == nil || r.TPS > best.TPS {
					best = r
				}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("no skew result (engine=%s, theta=%g)", engine, theta)
		}
		return best, nil
	}
	on, err := find("Cicada")
	if err != nil {
		return "", err
	}
	off, err := find("Cicada/no-adapt")
	if err != nil {
		return "", err
	}
	// Validation-phase abort pressure per commit: the aborts the per-record
	// adaptation specifically targets (heat-forced sorting and prechecks,
	// coarse rts maintenance).
	pressure := func(r *Result) float64 {
		commits := r.Extra["total_commits"]
		if commits <= 0 {
			return 0
		}
		return (r.Extra["aborts_validation"] + r.Extra["aborts_rts_early"]) / commits
	}
	// An absolute floor on the cap keeps a near-zero non-adaptive rate (a
	// fast run with almost no conflicts) from failing the gate on noise.
	const pressureEps = 0.005 // aborts per commit
	pOn, pOff := pressure(on), pressure(off)
	cap := pOff/slack + pressureEps
	summary := fmt.Sprintf(
		"skew-adaptive theta=%g: tps on=%.0f off=%.0f (floor %.0f), validation+rts_early aborts/commit on=%.4f off=%.4f (cap %.4f)",
		theta, on.TPS, off.TPS, off.TPS*slack, pOn, pOff, cap)
	if on.TPS < off.TPS*slack {
		return summary, fmt.Errorf("adaptive tps %.0f below floor %.0f (non-adaptive %.0f × slack %.2f)",
			on.TPS, off.TPS*slack, off.TPS, slack)
	}
	if pOn > cap {
		return summary, fmt.Errorf("adaptive validation+rts_early abort rate %.4f exceeds cap %.4f (non-adaptive %.4f / slack %.2f + %.3f)",
			pOn, cap, pOff, slack, pressureEps)
	}
	return summary, nil
}
