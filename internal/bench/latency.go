package bench

import (
	"math/bits"
	"time"
)

// latHist is a per-worker power-of-two latency histogram: cheap enough to
// update on every transaction without perturbing the measurement. Bucket i
// holds latencies in [2^i, 2^(i+1)) nanoseconds.
type latHist struct {
	buckets [48]uint64
}

func (h *latHist) add(d time.Duration) {
	if d <= 0 {
		d = 1
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

// percentile merges the histograms and returns the latency at quantile q
// (0 < q ≤ 1), approximated by the bucket upper bound.
func percentile(hists []*latHist, q float64) time.Duration {
	var total uint64
	var merged [48]uint64
	for _, h := range hists {
		if h == nil {
			continue
		}
		for i, n := range h.buckets {
			merged[i] += n
			total += n
		}
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range merged {
		seen += n
		if seen >= target {
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(uint64(1) << 47)
}
