package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// JSONSchemaVersion identifies the BENCH_*.json layout; bump it when Result
// or RunMeta change shape so trajectory tooling can detect old files.
// Version 2 adds the derived top-level "scalability" section (tps-vs-threads
// curves); "meta" and "results" are unchanged, so version-1 readers keep
// working. Version 3 adds allocs_per_txn and fsyncs_per_txn to results and
// scalability points — additive and omitempty, so version-2 readers are
// unaffected. Version 4 adds the derived top-level "skew" section
// (tps-vs-theta curves with the abort taxonomy, from the "skew"
// experiment) — additive and omitempty again.
const JSONSchemaVersion = 4

// RunMeta describes the machine and configuration that produced a JSON
// benchmark report, so numbers from different PRs compare meaningfully.
type RunMeta struct {
	SchemaVersion int      `json:"schema_version"`
	CreatedAt     string   `json:"created_at"` // RFC 3339
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	NumCPU        int      `json:"num_cpu"`
	Experiments   []string `json:"experiments"`
	Note          string   `json:"note,omitempty"`
}

// JSONReport is the file layout written by cicada-bench -json and committed
// as BENCH_ycsb.json / BENCH_tpcc.json (the perf trajectory seeds).
type JSONReport struct {
	Meta    RunMeta  `json:"meta"`
	Results []Result `json:"results"`
	// Scalability holds the per-thread-count curves derived from Results by
	// WriteJSON. It is additive (omitted when no experiment swept threads)
	// so schema-version-1 readers that only consume "results" are unaffected.
	Scalability []ScalabilityCurve `json:"scalability,omitempty"`
	// Skew holds the tps-vs-theta curves derived from the "skew" experiment
	// (adaptive contention management validation). Additive since schema
	// version 4; omitted when the experiment did not run.
	Skew []SkewCurve `json:"skew,omitempty"`
}

// ThreadPoint is one point of a tps-vs-threads curve.
type ThreadPoint struct {
	Threads   int     `json:"threads"`
	TPS       float64 `json:"tps"`
	AbortRate float64 `json:"abort_rate"`
	// Speedup is TPS relative to the curve's single-thread point, 0 when the
	// sweep has no threads=1 measurement.
	Speedup float64 `json:"speedup,omitempty"`
	// AllocsPerTxn / FsyncsPerTxn mirror the point's Result fields
	// (schema v3, additive).
	AllocsPerTxn float64 `json:"allocs_per_txn,omitempty"`
	FsyncsPerTxn float64 `json:"fsyncs_per_txn,omitempty"`
}

// ScalabilityCurve is a tps-vs-threads series for one (experiment, engine,
// param) combination, derived from any experiment that measured the same
// configuration at more than one thread count.
type ScalabilityCurve struct {
	Experiment string `json:"experiment"`
	Engine     string `json:"engine"`
	// Param is the swept non-thread parameter (e.g. Zipf theta), 0 if none.
	Param  float64       `json:"param"`
	Points []ThreadPoint `json:"points"`
	// PeakThreads is the thread count with the highest TPS on this curve.
	PeakThreads int `json:"peak_threads"`
}

// SkewPoint is one point of a tps-vs-theta curve.
type SkewPoint struct {
	Theta     float64 `json:"theta"`
	TPS       float64 `json:"tps"`
	AbortRate float64 `json:"abort_rate"`
	// AbortsPerCommit breaks concurrency-control aborts down by reason,
	// normalized by committed transactions over the whole trial.
	AbortsPerCommit map[string]float64 `json:"aborts_per_commit,omitempty"`
}

// SkewCurve is a tps-vs-theta series for one engine variant of the "skew"
// experiment.
type SkewCurve struct {
	Engine string      `json:"engine"`
	Points []SkewPoint `json:"points"`
}

// NewRunMeta fills the environment fields; the caller adds experiments.
func NewRunMeta(experiments []string, note string) RunMeta {
	return RunMeta{
		SchemaVersion: JSONSchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Experiments:   experiments,
		Note:          note,
	}
}

// WriteJSON writes results as an indented, stable-key-order JSON report
// (encoding/json sorts map keys, so diffs between runs stay readable). The
// "scalability" section is derived from results on the way out.
func WriteJSON(w io.Writer, meta RunMeta, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONReport{
		Meta:        meta,
		Results:     results,
		Scalability: DeriveScalability(results),
		Skew:        DeriveSkew(results),
	})
}

// DeriveSkew folds "skew" experiment results into per-engine tps-vs-theta
// curves, sorted for stable diffs. The per-reason abort taxonomy is read
// from the aborts_* Extra entries Skew's Inspect hook records, normalized by
// the trial's total commits.
func DeriveSkew(results []Result) []SkewCurve {
	groups := map[string][]Result{}
	var order []string
	for _, r := range results {
		if r.Experiment != "skew" {
			continue
		}
		if _, seen := groups[r.Engine]; !seen {
			order = append(order, r.Engine)
		}
		groups[r.Engine] = append(groups[r.Engine], r)
	}
	sort.Strings(order)
	var curves []SkewCurve
	for _, eng := range order {
		rs := groups[eng]
		sort.Slice(rs, func(a, b int) bool { return rs[a].Param < rs[b].Param })
		c := SkewCurve{Engine: eng}
		for _, r := range rs {
			p := SkewPoint{Theta: r.Param, TPS: r.TPS, AbortRate: r.AbortRate}
			if commits := r.Extra["total_commits"]; commits > 0 {
				for k, v := range r.Extra {
					if reason, ok := strings.CutPrefix(k, "aborts_"); ok {
						if p.AbortsPerCommit == nil {
							p.AbortsPerCommit = map[string]float64{}
						}
						p.AbortsPerCommit[reason] = v / commits
					}
				}
			}
			c.Points = append(c.Points, p)
		}
		curves = append(curves, c)
	}
	return curves
}

// DeriveScalability groups results by (experiment, engine, param) and
// returns a tps-vs-threads curve for every group measured at more than one
// thread count, sorted for stable diffs. Speedup is relative to the group's
// threads=1 point when present.
func DeriveScalability(results []Result) []ScalabilityCurve {
	type curveKey struct {
		exp    string
		engine string
		param  float64
	}
	groups := map[curveKey][]Result{}
	var order []curveKey
	for _, r := range results {
		k := curveKey{r.Experiment, r.Engine, r.Param}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].exp != order[b].exp {
			return order[a].exp < order[b].exp
		}
		if order[a].engine != order[b].engine {
			return order[a].engine < order[b].engine
		}
		return order[a].param < order[b].param
	})
	var curves []ScalabilityCurve
	for _, k := range order {
		rs := groups[k]
		threads := map[int]bool{}
		for _, r := range rs {
			threads[r.Threads] = true
		}
		if len(threads) < 2 {
			continue
		}
		sort.Slice(rs, func(a, b int) bool { return rs[a].Threads < rs[b].Threads })
		var base float64
		for _, r := range rs {
			if r.Threads == 1 {
				base = r.TPS
				break
			}
		}
		c := ScalabilityCurve{Experiment: k.exp, Engine: k.engine, Param: k.param}
		var peakTPS float64
		for _, r := range rs {
			p := ThreadPoint{Threads: r.Threads, TPS: r.TPS, AbortRate: r.AbortRate,
				AllocsPerTxn: r.AllocsPerTxn, FsyncsPerTxn: r.FsyncsPerTxn}
			if base > 0 {
				p.Speedup = r.TPS / base
			}
			c.Points = append(c.Points, p)
			if r.TPS > peakTPS {
				peakTPS = r.TPS
				c.PeakThreads = r.Threads
			}
		}
		curves = append(curves, c)
	}
	return curves
}
