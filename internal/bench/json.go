package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// JSONSchemaVersion identifies the BENCH_*.json layout; bump it when Result
// or RunMeta change shape so trajectory tooling can detect old files.
const JSONSchemaVersion = 1

// RunMeta describes the machine and configuration that produced a JSON
// benchmark report, so numbers from different PRs compare meaningfully.
type RunMeta struct {
	SchemaVersion int      `json:"schema_version"`
	CreatedAt     string   `json:"created_at"` // RFC 3339
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	NumCPU        int      `json:"num_cpu"`
	Experiments   []string `json:"experiments"`
	Note          string   `json:"note,omitempty"`
}

// JSONReport is the file layout written by cicada-bench -json and committed
// as BENCH_ycsb.json / BENCH_tpcc.json (the perf trajectory seeds).
type JSONReport struct {
	Meta    RunMeta  `json:"meta"`
	Results []Result `json:"results"`
}

// NewRunMeta fills the environment fields; the caller adds experiments.
func NewRunMeta(experiments []string, note string) RunMeta {
	return RunMeta{
		SchemaVersion: JSONSchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Experiments:   experiments,
		Note:          note,
	}
}

// WriteJSON writes results as an indented, stable-key-order JSON report
// (encoding/json sorts map keys, so diffs between runs stay readable).
func WriteJSON(w io.Writer, meta RunMeta, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONReport{Meta: meta, Results: results})
}
