//go:build telemetry_smoke

package bench

import (
	"runtime"
	"testing"
	"time"

	"cicada/internal/telemetry"
	"cicada/internal/workload/ycsb"
)

// telemetrySmokeBound is the maximum relative throughput regression this
// smoke test tolerates between telemetry-off and telemetry-on runs. The
// acceptance target on a quiet benchmark machine is < 3% (see
// docs/OBSERVABILITY.md); CI machines are shared and the windows here are
// short, so the assertion is looser — it exists to catch a hot path
// accidentally made expensive (a lock, an allocation, an unconditional
// time.Now), not to certify the 3% number.
const telemetrySmokeBound = 0.15

// TestTelemetryOverheadSmoke compares YCSB throughput with telemetry
// disabled and enabled. Run with: go test -tags telemetry_smoke -run
// TelemetryOverhead ./internal/bench/
func TestTelemetryOverheadSmoke(t *testing.T) {
	threads := runtime.GOMAXPROCS(0)
	if threads > 4 {
		threads = 4
	}
	cfg := ycsb.DefaultConfig()
	cfg.Records = 100_000
	cfg.ReqsPerTx = 4
	cfg.Theta = 0 // uniform: keeps abort noise out of the comparison
	o := YCSBOpts{
		Threads:   threads,
		Cfg:       cfg,
		Durations: Durations{Ramp: 100 * time.Millisecond, Measure: 500 * time.Millisecond},
	}

	const trials = 3
	run := func(live *telemetry.Live) float64 {
		prev := Telemetry
		Telemetry = live
		defer func() { Telemetry = prev }()
		best := 0.0
		for i := 0; i < trials; i++ {
			if tps := RunYCSB("Cicada", Factory("Cicada"), o).TPS; tps > best {
				best = tps
			}
		}
		return best
	}

	off := run(nil)
	on := run(telemetry.NewLive())
	if off <= 0 || on <= 0 {
		t.Fatalf("degenerate throughput: off=%.0f on=%.0f", off, on)
	}
	delta := (off - on) / off
	t.Logf("telemetry off: %.0f tps, on: %.0f tps, regression %.2f%%", off, on, 100*delta)
	if delta > telemetrySmokeBound {
		t.Errorf("telemetry overhead %.2f%% exceeds %.0f%% smoke bound",
			100*delta, 100*telemetrySmokeBound)
	}
}
