package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// sampleResults builds a two-curve result set: Cicada sweeping 1→2 threads
// and a durable Cicada/WAL curve carrying the new v3 fields.
func sampleResults() []Result {
	return []Result{
		{Experiment: "fig6a", Engine: "Cicada", Threads: 1, TPS: 100, AllocsPerTxn: 3},
		{Experiment: "fig6a", Engine: "Cicada", Threads: 2, TPS: 80, AllocsPerTxn: 4},
		{Experiment: "scaling", Engine: "Cicada/WAL", Threads: 1, TPS: 90, FsyncsPerTxn: 0.01},
		{Experiment: "scaling", Engine: "Cicada/WAL", Threads: 2, TPS: 120, FsyncsPerTxn: 0.02},
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewRunMeta([]string{"fig6a", "scaling"}, ""), sampleResults()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta.SchemaVersion != JSONSchemaVersion {
		t.Fatalf("schema %d, want %d", rep.Meta.SchemaVersion, JSONSchemaVersion)
	}
	c, err := FindCurve(rep, "fig6a", "Cicada", 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpeedupAt(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 0.8 {
		t.Fatalf("speedup %g, want 0.8", sp)
	}
	if c.Points[1].AllocsPerTxn != 4 {
		t.Fatalf("allocs_per_txn not carried into curve point: %+v", c.Points[1])
	}
	wc, err := FindCurve(rep, "scaling", "Cicada/WAL", 0)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Points[1].FsyncsPerTxn != 0.02 {
		t.Fatalf("fsyncs_per_txn not carried into curve point: %+v", wc.Points[1])
	}
}

// TestLoadReportOldSchema: a v2 seed (no allocs/fsyncs fields) still loads
// and serves speedups — the committed seeds predate the v3 bump.
func TestLoadReportOldSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	old := `{
	  "meta": {"schema_version": 2, "experiments": ["fig6a"]},
	  "results": [
	    {"experiment":"fig6a","engine":"Cicada","threads":1,"param":0,"tps":100,"abort_rate":0,"abort_time_frac":0},
	    {"experiment":"fig6a","engine":"Cicada","threads":2,"param":0,"tps":51,"abort_rate":0,"abort_time_frac":0}
	  ],
	  "scalability": [
	    {"experiment":"fig6a","engine":"Cicada","param":0,"peak_threads":1,
	     "points":[{"threads":1,"tps":100,"abort_rate":0,"speedup":1},
	               {"threads":2,"tps":51,"abort_rate":0,"speedup":0.51}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FindCurve(rep, "fig6a", "Cicada", 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpeedupAt(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 0.51 {
		t.Fatalf("speedup %g, want 0.51", sp)
	}
}

func TestFindCurveErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewRunMeta(nil, ""), sampleResults()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindCurve(rep, "fig6a", "NoSuchEngine", 0); err == nil {
		t.Fatal("missing curve did not error")
	}
	c, _ := FindCurve(rep, "fig6a", "Cicada", 0)
	if _, err := SpeedupAt(c, 16); err == nil {
		t.Fatal("missing thread point did not error")
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"results": []}`), 0o644)
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("schema-less file did not error")
	}
}
