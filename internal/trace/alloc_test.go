package trace

import (
	"testing"
	"time"
)

// Allocation-budget tests for the trace write path: Enabled, SampleTxn, and
// Record must not allocate (docs/OBSERVABILITY.md's overhead contract). The
// budgets mirror internal/core's: warm up, then testing.AllocsPerRun.

const allocWarmup = 5000

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budgets enforced in non-race builds")
	}
	for i := 0; i < allocWarmup; i++ {
		fn()
	}
	if avg := testing.AllocsPerRun(2000, fn); avg != 0 {
		t.Errorf("%s: %.3f allocs/op; budget is 0", name, avg)
	}
}

func TestAllocBudgetRecordEnabled(t *testing.T) {
	tr := New(Options{Workers: 1, Capacity: 1024, SampleEvery: 64})
	tr.SetEnabled(true)
	s := tr.Shard(0)
	now := time.Now().UnixNano()
	assertZeroAllocs(t, "sampled txn event sequence (1/64 sampling)", func() {
		if !s.Enabled() {
			t.Fatal("shard disabled")
		}
		if s.SampleTxn() {
			s.Record(EvTxnBegin, now, 0, 1, 0)
			s.Record(EvPhaseExecute, now, 100, 1, 0)
			s.Record(EvPhaseValidate, now, 50, 1, 0)
			s.Record(EvPhaseWrite, now, 25, 1, 0)
			s.Record(EvTxnCommit, now, 200, 1, 1<<32|1)
		}
	})
}

func TestAllocBudgetDisabled(t *testing.T) {
	tr := New(Options{Workers: 1, Capacity: 1024, SampleEvery: 64})
	s := tr.Shard(0)
	assertZeroAllocs(t, "disabled-shard check", func() {
		if s.Enabled() {
			t.Fatal("shard unexpectedly enabled")
		}
	})
}
