package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cicada/internal/telemetry"
)

func newEnabled(t *testing.T, o Options) *Tracer {
	t.Helper()
	tr := New(o)
	tr.SetEnabled(true)
	return tr
}

func TestRecordEventsRoundTrip(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 2, Capacity: 16, SampleEvery: 1})
	s0 := tr.Shard(0)
	s0.Record(EvTxnBegin, 1000, 0, 42, 0)
	s0.Record(EvTxnCommit, 1000, 500, 42, 2<<32|3)
	tr.Shard(1).Record(EvPendingWait, 2000, 250, 7, 0)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() = %d events; want 3", len(evs))
	}
	if evs[0].Kind != EvTxnBegin || evs[0].Start != 1000 || evs[0].A != 42 {
		t.Errorf("event 0 = %+v; want txn_begin start=1000 a=42", evs[0])
	}
	if evs[1].Kind != EvTxnCommit || evs[1].Dur != 500 || evs[1].B != 2<<32|3 {
		t.Errorf("event 1 = %+v; want txn_commit dur=500 b=reads<<32|writes", evs[1])
	}
	if evs[2].Shard != 1 || evs[2].Kind != EvPendingWait || evs[2].A != 7 {
		t.Errorf("event 2 = %+v; want shard-1 pending_wait key=7", evs[2])
	}
	if got := tr.EventsTotal(); got != 3 {
		t.Errorf("EventsTotal = %d; want 3", got)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 1, Capacity: 4, SampleEvery: 1})
	s := tr.Shard(0)
	for i := 0; i < 10; i++ {
		s.Record(EvBackoff, int64(i), uint64(i), 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() after overwrite = %d; want capacity 4", len(evs))
	}
	// Oldest surviving event is #6 (10 recorded into 4 slots).
	if evs[0].Start != 6 || evs[3].Start != 9 {
		t.Errorf("surviving events span starts %d..%d; want 6..9", evs[0].Start, evs[3].Start)
	}
	if got := tr.EventsOverwritten(); got != 6 {
		t.Errorf("EventsOverwritten = %d; want 6", got)
	}
}

func TestSampling(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 1, Capacity: 16, SampleEvery: 4})
	s := tr.Shard(0)
	var hits int
	for i := 0; i < 16; i++ {
		if s.SampleTxn() {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("sampled %d of 16 at 1/4; want 4", hits)
	}
	if got := tr.TxnsSampled(); got != 4 {
		t.Errorf("TxnsSampled = %d; want 4", got)
	}
}

func TestDisabledShard(t *testing.T) {
	tr := New(Options{Workers: 1})
	if tr.Shard(0).Enabled() {
		t.Fatal("new tracer's shard is enabled before SetEnabled(true)")
	}
	tr.SetEnabled(true)
	// Shards created after enabling inherit the switch.
	extra := tr.AddShard("wal-logger")
	if !tr.Shard(0).Enabled() || !extra.Enabled() {
		t.Fatal("SetEnabled(true) did not propagate to all shards")
	}
	tr.SetEnabled(false)
	if tr.Shard(0).Enabled() || extra.Enabled() {
		t.Fatal("SetEnabled(false) did not propagate to all shards")
	}
}

func TestContentionFold(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 1, Capacity: 64, SampleEvery: 1})
	s := tr.Shard(0)
	// Key 5: two waits totaling 3000ns. Key 9: one abort (scores 1000).
	s.Record(EvPendingWait, 100, 1000, 5, 0)
	s.Record(EvPendingWait, 200, 2000, 5, 0)
	s.Record(EvTxnAbort, 300, 50, 9, 1)
	// Unkeyed abort must not create an entry.
	s.Record(EvTxnAbort, 400, 50, NoKey, 7)

	rep := tr.Contention(10)
	if len(rep.TopKeys) != 2 {
		t.Fatalf("TopKeys = %d entries; want 2", len(rep.TopKeys))
	}
	if rep.TopKeys[0].Key != 5 || rep.TopKeys[0].Score != 3000 || rep.TopKeys[0].Waits != 2 {
		t.Errorf("top key = %+v; want key 5 score 3000 waits 2", rep.TopKeys[0])
	}
	if rep.TopKeys[1].Key != 9 || rep.TopKeys[1].Aborts != 1 || rep.TopKeys[1].Score != 1000 {
		t.Errorf("second key = %+v; want key 9 with 1 abort", rep.TopKeys[1])
	}
	if rep.TotalWaitNs != 3000 || rep.TotalAborts != 1 {
		t.Errorf("totals = wait %d aborts %d; want 3000 and 1 (NoKey abort excluded)", rep.TotalWaitNs, rep.TotalAborts)
	}

	// Truncation counts dropped keys.
	rep = tr.Contention(1)
	if len(rep.TopKeys) != 1 || rep.DroppedKeys != 1 {
		t.Errorf("k=1 report = %d keys, %d dropped; want 1 and 1", len(rep.TopKeys), rep.DroppedKeys)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 1, Capacity: 64, SampleEvery: 1})
	tr.SetKeyNamer(func(key uint64) string { return "tbl[" + string(rune('0'+key)) + "]" })
	tr.SetAbortReasons([]string{"rts_early", "write_latest"})
	s := tr.Shard(0)
	base := time.Now().UnixNano()
	s.Record(EvTxnBegin, base, 0, 1, 0)
	s.Record(EvTxnCommit, base, 1500, 1, 1<<32|1)
	s.Record(EvTxnAbort, base+100, 700, 3, 1)
	s.Record(EvPendingWait, base+200, 400, 3, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Contention ContentionReport `json:"cicadaContention"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 1 thread_name metadata row + 4 events.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d; want 5", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		byName[ev.Name] = i
	}
	begin := out.TraceEvents[byName["txn_begin"]]
	if begin.Phase != "i" {
		t.Errorf("txn_begin phase = %q; want instant \"i\"", begin.Phase)
	}
	commit := out.TraceEvents[byName["txn_commit"]]
	if commit.Phase != "X" || commit.Dur != 1.5 {
		t.Errorf("txn_commit = phase %q dur %gus; want X / 1.5", commit.Phase, commit.Dur)
	}
	abort := out.TraceEvents[byName["txn_abort"]]
	if abort.Args["reason"] != "write_latest" || abort.Args["key_name"] != "tbl[3]" {
		t.Errorf("txn_abort args = %v; want reason write_latest on tbl[3]", abort.Args)
	}
	if len(out.Contention.TopKeys) == 0 || out.Contention.TopKeys[0].Key != 3 {
		t.Errorf("embedded contention report = %+v; want key 3 on top", out.Contention)
	}
}

func TestHandlerAndLive(t *testing.T) {
	var live Live
	// Nil tracer → 404.
	rr := httptest.NewRecorder()
	live.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cicada-trace", nil))
	if rr.Code != 404 {
		t.Fatalf("nil-tracer status = %d; want 404", rr.Code)
	}

	tr := newEnabled(t, Options{Workers: 1, Capacity: 16, SampleEvery: 1})
	tr.Shard(0).Record(EvPendingWait, 100, 900, 12, 0)
	live.Set(tr)

	rr = httptest.NewRecorder()
	live.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cicada-trace", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "traceEvents") {
		t.Fatalf("trace endpoint: status %d body %q", rr.Code, rr.Body.String()[:min(80, rr.Body.Len())])
	}

	rr = httptest.NewRecorder()
	live.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cicada-trace?contention=1&k=3", nil))
	var rep ContentionReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("contention endpoint: %v", err)
	}
	if len(rep.TopKeys) != 1 || rep.TopKeys[0].Key != 12 {
		t.Errorf("contention report = %+v; want key 12", rep)
	}
}

func TestConcurrentReadersUnderWrites(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 2, Capacity: 32, SampleEvery: 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Record(Kind(i%int(NumKinds)), int64(i), uint64(i), uint64(i), 0)
			}
		}(tr.Shard(id))
	}
	for i := 0; i < 50; i++ {
		for _, ev := range tr.Events() {
			if ev.Kind >= NumKinds {
				t.Errorf("torn read: kind %d", ev.Kind)
			}
		}
		tr.Contention(4)
	}
	close(stop)
	wg.Wait()
}

func TestRegisterMetrics(t *testing.T) {
	tr := newEnabled(t, Options{Workers: 1, Capacity: 16, SampleEvery: 2})
	reg := telemetry.NewRegistry(1)
	tr.RegisterMetrics(reg)
	s := tr.Shard(0)
	s.SampleTxn()
	s.SampleTxn()
	s.Record(EvTxnBegin, 1, 0, 0, 0)

	vals := reg.MonotoneValues()
	want := map[string]float64{
		"trace_events_total":             1,
		"trace_txns_sampled_total":       1,
		"trace_events_overwritten_total": 0,
	}
	for fam, v := range want {
		got, ok := findMetric(vals, fam)
		if !ok {
			t.Errorf("family %s not registered (have %v)", fam, vals)
		} else if got != v {
			t.Errorf("%s = %g; want %g", fam, got, v)
		}
	}
}

func findMetric(vals map[string]float64, fam string) (float64, bool) {
	if v, ok := vals[fam]; ok {
		return v, true
	}
	for k, v := range vals {
		if strings.HasPrefix(k, fam) {
			return v, true
		}
	}
	return 0, false
}

func TestEventNamesCatalog(t *testing.T) {
	names := EventNames()
	if len(names) != int(NumKinds) {
		t.Fatalf("EventNames() = %d entries; want NumKinds = %d", len(names), NumKinds)
	}
	seen := map[string]bool{}
	for k, name := range names {
		if name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate event name %q", name)
		}
		seen[name] = true
		if got := Kind(k).String(); got != name {
			t.Errorf("Kind(%d).String() = %q; want %q", k, got, name)
		}
	}
	if got := NumKinds.String(); got != "unknown" {
		t.Errorf("out-of-range kind String() = %q; want unknown", got)
	}
}
