package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
)

// Event is one decoded ring entry. Cold-path representation only; the hot
// path stores raw words (see slot).
type Event struct {
	// Shard is the recording shard's thread id (worker id, or an AddShard
	// index past the worker range).
	Shard int
	// ShardLabel is "worker" or the AddShard label (e.g. "wal-logger").
	ShardLabel string
	Kind       Kind
	// Start is the event's wall-clock start, Unix nanoseconds.
	Start int64
	// Dur is the event's duration in nanoseconds (0 for instants).
	Dur uint64
	// A and B are kind-specific arguments (see docs/OBSERVABILITY.md).
	A, B uint64
}

// Events snapshots every readable event across all shards, oldest first per
// shard. Slots being concurrently rewritten are skipped (the seqlock read
// protocol), so a snapshot under load is complete-ish, never torn.
func (t *Tracer) Events() []Event {
	var out []Event
	for _, s := range t.allShards() {
		out = s.appendEvents(out)
	}
	return out
}

func (s *Shard) appendEvents(out []Event) []Event {
	n := s.next.Load()
	cap64 := uint64(len(s.slots))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	for i := start; i < n; i++ {
		sl := &s.slots[i%cap64]
		seq1 := sl.seq.Load()
		if seq1%2 != 0 || seq1 == 0 {
			continue // mid-write or never written
		}
		ev := Event{
			Shard:      s.tid,
			ShardLabel: s.label,
			Kind:       Kind(sl.kind.Load()),
			Start:      sl.start.Load(),
			Dur:        sl.dur.Load(),
			A:          sl.a.Load(),
			B:          sl.b.Load(),
		}
		if sl.seq.Load() != seq1 {
			continue // rewritten while reading
		}
		if ev.Kind >= NumKinds {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// HotKey is one contention-report entry: a key's accumulated trace heat.
type HotKey struct {
	Key    uint64 `json:"key"`
	Name   string `json:"name,omitempty"`
	WaitNs uint64 `json:"wait_ns"`
	Waits  uint64 `json:"waits"`
	Aborts uint64 `json:"aborts"`
	// Score ranks keys: wait_ns + aborts×1000 (one abort weighs like 1 µs
	// of stall — aborts waste a whole execution, not just a spin).
	Score uint64 `json:"score"`
	// Heat is the engine's current per-record heat for the key, summed over
	// workers (see SetHeatSource); 0 when heat tracking is disabled. Unlike
	// the trace-derived fields above, it reflects the decayed *current*
	// contention sketch, not the ring buffer's history.
	Heat uint64 `json:"heat,omitempty"`
}

// ContentionReport attributes observed stalls and aborts to keys.
type ContentionReport struct {
	// TopKeys is ranked by Score, descending, at most K entries.
	TopKeys []HotKey `json:"top_keys"`
	// TotalWaitNs / TotalAborts cover *all* keyed events, not just TopKeys.
	TotalWaitNs uint64 `json:"total_wait_ns"`
	TotalAborts uint64 `json:"total_aborts"`
	// DroppedKeys counts distinct keys beyond the top K.
	DroppedKeys int `json:"dropped_keys"`
}

// DefaultTopK is Contention's default report size.
const DefaultTopK = 16

// Contention folds pending_wait and keyed txn_abort events into per-key
// heat and returns the top-K keys by score. k ≤ 0 means DefaultTopK.
func (t *Tracer) Contention(k int) ContentionReport {
	return foldContention(t, t.Events(), k)
}

func foldContention(t *Tracer, events []Event, k int) ContentionReport {
	if k <= 0 {
		k = DefaultTopK
	}
	type heat struct {
		waitNs, waits, aborts uint64
	}
	byKey := make(map[uint64]*heat)
	get := func(key uint64) *heat {
		h := byKey[key]
		if h == nil {
			h = &heat{}
			byKey[key] = h
		}
		return h
	}
	var rep ContentionReport
	for _, ev := range events {
		switch ev.Kind {
		case EvPendingWait:
			h := get(ev.A)
			h.waitNs += ev.Dur
			h.waits++
			rep.TotalWaitNs += ev.Dur
		case EvTxnAbort:
			if ev.A == NoKey {
				continue
			}
			get(ev.A).aborts++
			rep.TotalAborts++
		}
	}
	keys := make([]HotKey, 0, len(byKey))
	for key, h := range byKey {
		hk := HotKey{
			Key:    key,
			WaitNs: h.waitNs,
			Waits:  h.waits,
			Aborts: h.aborts,
			Score:  h.waitNs + h.aborts*1000,
		}
		if t != nil {
			hk.Name = t.KeyName(key)
			hk.Heat = t.keyHeat(key)
		}
		keys = append(keys, hk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Score != keys[j].Score {
			return keys[i].Score > keys[j].Score
		}
		return keys[i].Key < keys[j].Key
	})
	if len(keys) > k {
		rep.DroppedKeys = len(keys) - k
		keys = keys[:k]
	}
	rep.TopKeys = keys
	return rep
}

// chromeEvent is one Chrome trace-event object (the subset Perfetto and
// chrome://tracing understand; ts/dur are microseconds).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent    `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	Contention      ContentionReport `json:"cicadaContention"`
}

// WriteChromeTrace writes the tracer's current contents as Chrome
// trace-event JSON (object form), loadable in Perfetto / chrome://tracing.
// The contention report rides along under the "cicadaContention" key, so
// one file serves both the timeline and the hot-key attribution.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	rep := foldContention(t, events, DefaultTopK)

	// Rebase timestamps so the trace starts near zero (Perfetto renders
	// absolute Unix-epoch microseconds poorly).
	var base int64
	for _, ev := range events {
		if base == 0 || (ev.Start != 0 && ev.Start < base) {
			base = ev.Start
		}
	}

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+8),
		DisplayTimeUnit: "ns",
		Contention:      rep,
	}

	// Thread-name metadata rows so shards render with stable labels.
	seen := map[int]string{}
	for _, ev := range events {
		if _, ok := seen[ev.Shard]; !ok {
			seen[ev.Shard] = ev.ShardLabel
		}
	}
	tids := make([]int, 0, len(seen))
	for tid := range seen {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": seen[tid] + "-" + strconv.Itoa(tid)},
		})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			TS:   float64(ev.Start-base) / 1e3,
			PID:  1,
			TID:  ev.Shard,
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		if args := t.eventArgs(ev); len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// eventArgs renders an event's kind-specific arguments for the exporter.
func (t *Tracer) eventArgs(ev Event) map[string]any {
	args := map[string]any{}
	key := func(k uint64) {
		if k == NoKey {
			return
		}
		args["key"] = k
		if t != nil {
			if name := t.KeyName(k); name != "" {
				args["key_name"] = name
			}
		}
	}
	switch ev.Kind {
	case EvTxnBegin:
		args["ts"] = ev.A
	case EvTxnCommit:
		args["ts"] = ev.A
		args["reads"] = ev.B >> 32
		args["writes"] = ev.B & 0xffffffff
	case EvTxnAbort:
		key(ev.A)
		if t != nil {
			args["reason"] = t.abortReason(ev.B)
		} else {
			args["reason"] = ev.B
		}
	case EvPhaseExecute, EvPhaseValidate, EvPhaseWrite:
		args["ts"] = ev.A
	case EvPendingWait:
		key(ev.A)
	case EvGCPass:
		args["queue"] = ev.A
	case EvWALAppend:
		args["bytes"] = ev.A
	case EvWALBatch:
		args["bytes"] = ev.A
		args["records"] = ev.B
	}
	return args
}

// Handler serves the tracer as Chrome trace-event JSON. With ?contention=1
// it serves only the contention report; ?k=N sizes the report.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if r.URL.Query().Get("contention") != "" {
			k, _ := strconv.Atoi(r.URL.Query().Get("k"))
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(t.Contention(k))
			return
		}
		_ = t.WriteChromeTrace(w)
	})
}

// Live holds a swappable current tracer, so a long-lived HTTP endpoint can
// follow per-trial tracers (the bench harness rebuilds the tracer for every
// trial, mirroring telemetry.Live's registry swap).
type Live struct {
	cur atomic.Pointer[Tracer]
}

// Set installs t as the current tracer (nil allowed).
func (l *Live) Set(t *Tracer) { l.cur.Store(t) }

// Tracer returns the current tracer, or nil.
func (l *Live) Tracer() *Tracer { return l.cur.Load() }

// Handler serves whichever tracer is current at request time.
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Handler(l.Tracer()).ServeHTTP(w, r)
	})
}

// FprintContention writes a small human-readable hot-key table, used by
// cicada-bench after a -trace run.
func FprintContention(w io.Writer, rep ContentionReport) {
	if len(rep.TopKeys) == 0 {
		fmt.Fprintln(w, "contention: no keyed waits or aborts recorded")
		return
	}
	fmt.Fprintf(w, "contention: top %d keys (total wait %.3fms, %d keyed aborts)\n",
		len(rep.TopKeys), float64(rep.TotalWaitNs)/1e6, rep.TotalAborts)
	for i, hk := range rep.TopKeys {
		name := hk.Name
		if name == "" {
			name = fmt.Sprintf("0x%x", hk.Key)
		}
		fmt.Fprintf(w, "  %2d. %-24s wait %.3fms in %d waits, %d aborts\n",
			i+1, name, float64(hk.WaitNs)/1e6, hk.Waits, hk.Aborts)
	}
}
