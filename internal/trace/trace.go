// Package trace is the engine's transaction tracer: per-worker,
// single-writer, fixed-capacity ring buffers of compact binary events that
// reconstruct where a transaction's time went (phase boundaries, pending-
// version waits, backoff sleeps, GC passes, WAL appends and fsyncs) and
// which keys caused it to stall or abort.
//
// The write side follows the same sanctioned-word discipline as
// internal/telemetry: every slot word is an atomic written by exactly one
// goroutine (the shard's owner) through a seqlock — bump the sequence odd,
// store the payload words, bump it even — so recording takes no locks,
// issues no read-modify-write instructions, and allocates nothing. Readers
// (the exporter, the HTTP endpoint, the contention report) skip slots whose
// sequence is odd or changed mid-read and accept slightly stale rings.
//
// A disabled shard costs one atomic load per instrumentation site; an
// unattached tracer costs one nil check. Sampling is per worker: every
// SampleEvery-th transaction is traced in full, and concurrency-control
// aborts are always recorded (they are the rare, diagnostic events).
//
// Exports: Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) via WriteChromeTrace / the /debug/cicada-trace
// endpoint, and a per-key contention attribution report via Contention.
// The event catalog, sampling semantics, and overhead contract are
// documented in docs/OBSERVABILITY.md; the tracedrift analyzer keeps the
// catalog and that page in sync.
package trace

import (
	"sync"
	"sync/atomic"

	"cicada/internal/telemetry"
)

// Kind identifies a trace event type.
type Kind uint8

// The event catalog. Every kind here must appear in the event table in
// docs/OBSERVABILITY.md (enforced by cicada-lint's tracedrift analyzer).
const (
	// EvTxnBegin marks a sampled transaction's begin (instant event).
	EvTxnBegin Kind = iota
	// EvTxnCommit spans a sampled committed transaction begin→commit.
	EvTxnCommit
	// EvTxnAbort spans begin→abort; recorded for every concurrency-control
	// abort, sampled or not (arg A = conflict key, arg B = abort reason).
	EvTxnAbort
	// EvPhaseExecute spans the read phase of a sampled committed transaction.
	EvPhaseExecute
	// EvPhaseValidate spans the validation phase (hooks through logging).
	EvPhaseValidate
	// EvPhaseWrite spans the write phase (PENDING→COMMITTED flips).
	EvPhaseWrite
	// EvPendingWait spans one spin-wait on a PENDING version
	// (arg A = the waited-on key).
	EvPendingWait
	// EvBackoff spans one post-abort contention-regulation sleep.
	EvBackoff
	// EvGCPass spans one quiescence/maintenance round
	// (arg A = GC queue depth).
	EvGCPass
	// EvWALAppend spans one redo-record stage into the worker's chunk
	// chain (arg A = record bytes); it is a memory-only hand-off — file
	// I/O happens later in the batch flush (EvWALBatch).
	EvWALAppend
	// EvWALBatch spans one group-commit batch flush that drained at least
	// one chunk (logger-goroutine shards; arg A = batch bytes,
	// arg B = batch records).
	EvWALBatch
	// EvWALFsync spans one group-commit fsync (logger-goroutine shards).
	EvWALFsync

	// NumKinds is the catalog size.
	NumKinds
)

// eventNames maps Kind values to the stable names used by the exporter and
// by docs/OBSERVABILITY.md's event table (cross-checked by tracedrift).
var eventNames = [NumKinds]string{
	"txn_begin",
	"txn_commit",
	"txn_abort",
	"phase_execute",
	"phase_validate",
	"phase_write",
	"pending_wait",
	"backoff",
	"gc_pass",
	"wal_append",
	"wal_batch",
	"wal_fsync",
}

// String returns the kind's stable catalog name.
func (k Kind) String() string {
	if k < NumKinds {
		return eventNames[k]
	}
	return "unknown"
}

// EventNames returns the full catalog in Kind order.
func EventNames() []string {
	out := make([]string, NumKinds)
	copy(out, eventNames[:])
	return out
}

// NoKey is the conflict-key value meaning "no specific key" (e.g. a
// pre-commit hook veto or a logger failure).
const NoKey = ^uint64(0)

// slot is one ring entry: a seqlock over five payload words. The writer
// bumps seq odd, stores the payload, bumps seq even; readers skip odd or
// mid-write slots. All words are atomics, so the pattern is race-detector
// clean and never exposes a torn event.
type slot struct {
	seq   atomic.Uint64
	kind  atomic.Uint64
	start atomic.Int64 // wall-clock start, Unix nanoseconds
	dur   atomic.Uint64
	a     atomic.Uint64
	b     atomic.Uint64
}

// Shard is one goroutine's event ring. Exactly one goroutine may call
// Record/SampleTxn on a shard; any goroutine may read it at any time.
type Shard struct {
	// enabled mirrors the tracer's switch into the shard so the disabled
	// fast path is a single atomic load with no pointer chase.
	enabled atomic.Uint32
	// next counts events ever recorded into the ring (owner-only writer);
	// next − len(slots) of them have been overwritten.
	next atomic.Uint64
	// txns and sampled count sampling decisions (owner-only writers), read
	// by the trace_* metric families.
	txns    atomic.Uint64
	sampled atomic.Uint64

	sampleEvery uint64
	slots       []slot
	label       string
	tid         int
	_           [24]byte // pad hot words away from the neighbouring shard
}

// Enabled reports whether the tracer is recording. One atomic load.
//
//cicada:noalloc
func (s *Shard) Enabled() bool { return s.enabled.Load() != 0 }

// SampleTxn makes the per-transaction sampling decision: every
// SampleEvery-th transaction on this shard is traced in full. Owner-only.
//
//cicada:noalloc
func (s *Shard) SampleTxn() bool {
	n := s.txns.Load() + 1
	s.txns.Store(n)
	if n%s.sampleEvery != 0 {
		return false
	}
	s.sampled.Store(s.sampled.Load() + 1)
	return true
}

// Record appends one event, overwriting the oldest once the ring is full.
// Owner-only; allocation-free; no locks, no read-modify-write.
//
//cicada:noalloc
func (s *Shard) Record(k Kind, startUnixNano int64, durNs, a, b uint64) {
	i := s.next.Load()
	sl := &s.slots[i%uint64(len(s.slots))]
	seq := sl.seq.Load()
	sl.seq.Store(seq + 1) // odd: writing
	sl.kind.Store(uint64(k))
	sl.start.Store(startUnixNano)
	sl.dur.Store(durNs)
	sl.a.Store(a)
	sl.b.Store(b)
	sl.seq.Store(seq + 2) // even: stable
	s.next.Store(i + 1)
}

// Options configures a Tracer.
type Options struct {
	// Workers is the number of worker shards (one per engine worker).
	Workers int
	// Capacity is each shard's ring size in events. Default 8192
	// (~48 B/event ⇒ ~384 KiB per worker).
	Capacity int
	// SampleEvery traces every Nth transaction per worker (aborts are
	// always traced). Default 64; 1 traces everything.
	SampleEvery int
}

func (o *Options) setDefaults() {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Capacity < 1 {
		o.Capacity = 8192
	}
	if o.SampleEvery < 1 {
		o.SampleEvery = 64
	}
}

// Tracer owns the per-worker shards plus any extra single-writer shards
// (WAL logger goroutines). Construction and control are cold paths; only
// Shard methods appear on the transaction hot path.
type Tracer struct {
	opts    Options
	enabled atomic.Bool
	workers []*Shard

	mu    sync.Mutex
	extra []*Shard // AddShard results, snapshotted under mu

	// keyNamer renders a conflict key (table<<48 | record) as a
	// human-readable name in exports; installed by the engine.
	keyNamer atomic.Pointer[func(key uint64) string]
	// heatSource reports a key's current engine-side heat (the per-record
	// contention sketch) for the contention report; installed by the engine.
	heatSource atomic.Pointer[func(key uint64) uint64]
	// abortReasons maps EvTxnAbort's arg B to taxonomy names.
	abortReasons atomic.Pointer[[]string]
}

// New creates a tracer with one ring per worker. The tracer starts
// disabled; call SetEnabled(true) to record.
func New(o Options) *Tracer {
	o.setDefaults()
	t := &Tracer{opts: o}
	t.workers = make([]*Shard, o.Workers)
	for i := range t.workers {
		t.workers[i] = t.newShard("worker", i)
	}
	return t
}

func (t *Tracer) newShard(label string, tid int) *Shard {
	s := &Shard{
		sampleEvery: uint64(t.opts.SampleEvery),
		slots:       make([]slot, t.opts.Capacity),
		label:       label,
		tid:         tid,
	}
	if t.enabled.Load() {
		s.enabled.Store(1)
	}
	return s
}

// Shards returns the worker shard count.
func (t *Tracer) Shards() int { return len(t.workers) }

// Shard returns worker id's ring.
func (t *Tracer) Shard(id int) *Shard { return t.workers[id] }

// AddShard creates an extra single-writer shard for a non-worker goroutine
// (e.g. a WAL group-commit logger). Cold path; safe to call concurrently.
func (t *Tracer) AddShard(label string) *Shard {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newShard(label, len(t.workers)+len(t.extra))
	t.extra = append(t.extra, s)
	return s
}

// SetEnabled switches recording on or off, propagating to every shard so
// the hot-path check stays one shard-local atomic load.
func (t *Tracer) SetEnabled(on bool) {
	t.enabled.Store(on)
	v := uint32(0)
	if on {
		v = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.workers {
		s.enabled.Store(v)
	}
	for _, s := range t.extra {
		s.enabled.Store(v)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SampleEvery returns the per-worker sampling period.
func (t *Tracer) SampleEvery() int { return t.opts.SampleEvery }

// SetKeyNamer installs the conflict-key renderer used by exports (the
// engine maps table<<48|record back to "table[rid]"). Call before export;
// concurrent installation is safe.
func (t *Tracer) SetKeyNamer(fn func(key uint64) string) {
	if fn == nil {
		t.keyNamer.Store(nil)
		return
	}
	t.keyNamer.Store(&fn)
}

// SetHeatSource installs the engine callback that reports a key's current
// heat; exports merge it into each contention-report entry (HotKey.Heat).
// Concurrent installation is safe.
func (t *Tracer) SetHeatSource(fn func(key uint64) uint64) {
	if fn == nil {
		t.heatSource.Store(nil)
		return
	}
	t.heatSource.Store(&fn)
}

// keyHeat queries the installed heat source, 0 when none is installed.
func (t *Tracer) keyHeat(key uint64) uint64 {
	if fn := t.heatSource.Load(); fn != nil {
		return (*fn)(key)
	}
	return 0
}

// SetAbortReasons installs the abort-taxonomy names used to render
// EvTxnAbort events (index = reason value).
func (t *Tracer) SetAbortReasons(names []string) {
	cp := append([]string(nil), names...)
	t.abortReasons.Store(&cp)
}

// KeyName renders a conflict key through the installed namer.
func (t *Tracer) KeyName(key uint64) string {
	if key == NoKey {
		return ""
	}
	if fn := t.keyNamer.Load(); fn != nil {
		return (*fn)(key)
	}
	return ""
}

func (t *Tracer) abortReason(i uint64) string {
	if names := t.abortReasons.Load(); names != nil && i < uint64(len(*names)) {
		return (*names)[i]
	}
	return "unknown"
}

// allShards snapshots the shard list (worker shards plus extras).
func (t *Tracer) allShards() []*Shard {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Shard, 0, len(t.workers)+len(t.extra))
	out = append(out, t.workers...)
	out = append(out, t.extra...)
	return out
}

// EventsTotal returns the number of events ever recorded across all shards.
func (t *Tracer) EventsTotal() uint64 {
	var n uint64
	for _, s := range t.allShards() {
		n += s.next.Load()
	}
	return n
}

// TxnsSampled returns the number of transactions chosen by sampling.
func (t *Tracer) TxnsSampled() uint64 {
	var n uint64
	for _, s := range t.allShards() {
		n += s.sampled.Load()
	}
	return n
}

// EventsOverwritten returns how many recorded events have been lost to ring
// wrap-around (per shard: max(0, recorded − capacity)).
func (t *Tracer) EventsOverwritten() uint64 {
	var n uint64
	for _, s := range t.allShards() {
		if rec, cap := s.next.Load(), uint64(len(s.slots)); rec > cap {
			n += rec - cap
		}
	}
	return n
}

// RegisterMetrics publishes the tracer's own health counters as trace_*
// telemetry families (documented in docs/OBSERVABILITY.md).
func (t *Tracer) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("trace_events_total",
		"Trace events recorded across all shards (including overwritten).",
		func() float64 { return float64(t.EventsTotal()) })
	reg.CounterFunc("trace_txns_sampled_total",
		"Transactions selected by every-Nth trace sampling.",
		func() float64 { return float64(t.TxnsSampled()) })
	reg.CounterFunc("trace_events_overwritten_total",
		"Trace events lost to ring wrap-around (grow Capacity if nonzero).",
		func() float64 { return float64(t.EventsOverwritten()) })
}
