// Package engine defines the scheme-agnostic database interface shared by
// the workloads (TPC-C, YCSB) and the benchmark harness, in the spirit of
// the DBx1000 framework the paper uses (§4.2): Cicada and every baseline
// concurrency control scheme implement the same interface but keep separate
// data storage and transaction processing engines, so benchmark code is
// shared while engines are compared directly.
package engine

import (
	"errors"
	"time"

	"cicada/internal/telemetry"
	"cicada/internal/trace"
)

// TableID identifies a table within a DB.
type TableID int

// IndexID identifies an index within a DB.
type IndexID int

// RecordID locates a record within a table. Indexes store RecordIDs as
// values (§3.6).
type RecordID uint64

// InvalidRecordID is a sentinel for "no record".
const InvalidRecordID = ^RecordID(0)

// Errors shared by all engines.
var (
	// ErrAborted reports a concurrency conflict; Worker.Run retries.
	ErrAborted = errors.New("engine: transaction aborted")
	// ErrNotFound reports a missing record or index key.
	ErrNotFound = errors.New("engine: not found")
	// ErrUserAbort requests a rollback without retry (e.g., the 1 % of
	// TPC-C NewOrder transactions that roll back by specification).
	ErrUserAbort = errors.New("engine: user abort")
)

// Tx is one transaction. Buffers returned by Read are valid until the
// transaction finishes and must not be modified; buffers returned by
// Update/Write/Insert are staged local copies the caller fills in.
type Tx interface {
	// Read returns the record's data.
	Read(t TableID, r RecordID) ([]byte, error)
	// Update stages a read-modify-write and returns a writable buffer
	// initialized with the current data (resized to size if size ≥ 0).
	Update(t TableID, r RecordID, size int) ([]byte, error)
	// Write stages a blind write of size bytes and returns the buffer.
	Write(t TableID, r RecordID, size int) ([]byte, error)
	// Insert creates a record and returns its ID and data buffer.
	Insert(t TableID, size int) (RecordID, []byte, error)
	// Delete removes the record.
	Delete(t TableID, r RecordID) error

	// IndexGet returns a record ID for key, or ErrNotFound.
	IndexGet(i IndexID, key uint64) (RecordID, error)
	// IndexScan visits entries with lo ≤ key ≤ hi in key order until fn
	// returns false or limit entries have been visited (limit < 0 means
	// unlimited). Only ordered indexes support scans.
	IndexScan(i IndexID, lo, hi uint64, limit int, fn func(key uint64, r RecordID) bool) error
	// IndexInsert adds (key → r) to the index.
	IndexInsert(i IndexID, key uint64, r RecordID) error
	// IndexDelete removes (key → r) from the index.
	IndexDelete(i IndexID, key uint64, r RecordID) error
}

// Worker is a per-thread handle; it must be used from one goroutine at a
// time.
type Worker interface {
	// Run executes fn in a read-write transaction, retrying on ErrAborted
	// with the engine's backoff policy. fn may run many times; it must be
	// idempotent up to its transaction operations.
	Run(fn func(tx Tx) error) error
	// RunRO executes fn in a read-only transaction if the engine supports
	// snapshots, else in a regular transaction.
	RunRO(fn func(tx Tx) error) error
	// Idle lets the worker run maintenance while it has no work.
	Idle()
}

// DirectReader is an optional Worker capability: reading a single record
// without a transaction (Cicada, Appendix B). Engines whose record data is
// always consistent can serve such reads with no locking or copying;
// workloads test for the capability with a type assertion.
type DirectReader interface {
	// ReadDirect returns the record's data at a recent consistent snapshot,
	// or ok=false if no committed version is visible.
	ReadDirect(t TableID, r RecordID) ([]byte, bool)
}

// Stats aggregates transaction outcome counters across workers.
type Stats struct {
	Commits    uint64
	Aborts     uint64
	UserAborts uint64
	AbortTime  time.Duration
	BusyTime   time.Duration
}

// AbortRate returns aborts / (aborts + commits).
func (s Stats) AbortRate() float64 {
	total := s.Aborts + s.Commits
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// DB is a database instance under one concurrency control scheme.
type DB interface {
	// Name identifies the concurrency control scheme ("Cicada", "Silo'",
	// "TicToc", ...).
	Name() string
	// CreateTable registers a table before any transactions run.
	CreateTable(name string) TableID
	// CreateHashIndex registers an unordered index (point queries only).
	CreateHashIndex(name string, buckets int) IndexID
	// CreateOrderedIndex registers an ordered index (point + range).
	CreateOrderedIndex(name string) IndexID
	// Worker returns the handle for worker id (0 ≤ id < Workers()).
	Worker(id int) Worker
	// Workers returns the configured worker count.
	Workers() int
	// Stats aggregates all workers' counters. Call it only while workers
	// are paused or finished.
	Stats() Stats
	// CommitsLive returns the current committed-transaction count; it is
	// safe to call concurrently (used for live throughput sampling).
	CommitsLive() uint64
}

// Config carries the knobs shared by every engine's constructor.
type Config struct {
	// Workers is the number of worker threads.
	Workers int
	// PhantomAvoidance selects eager index updates with index node
	// validation (Figure 3 mode). When false, engines defer index updates
	// until after validation and skip node validation (Figure 4 mode).
	PhantomAvoidance bool
	// HashBucketsHint sizes hash indexes (entries, not buckets).
	HashBucketsHint int
	// Metrics, when non-nil, receives the engine's metric registrations.
	// The registry must be built with at least Workers shards. Every engine
	// registers the shared engine_* counter families labeled with its
	// scheme name so the seven engines report comparable series; Cicada
	// additionally registers its cicada_* internals (see
	// docs/OBSERVABILITY.md). nil disables telemetry at zero cost.
	Metrics *telemetry.Registry
	// Trace, when non-nil, attaches the transaction tracer to engines that
	// support it (currently Cicada only; baselines ignore it). The tracer
	// must have at least Workers shards. See docs/OBSERVABILITY.md
	// "Tracing".
	Trace *trace.Tracer
}

// Factory builds a DB for a scheme.
type Factory func(cfg Config) DB

// WarmUp drives every worker's idle maintenance for a short period so
// engine watermarks (read-only snapshot timestamps, garbage collection
// horizons) advance past all loaded data before measurement begins. Call it
// between loading and running a workload.
func WarmUp(db DB) {
	for r := 0; r < 50; r++ {
		for id := 0; id < db.Workers(); id++ {
			db.Worker(id).Idle()
		}
		time.Sleep(50 * time.Microsecond)
	}
}
