package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout. Values (nanoseconds) below 2^histMinShift share
// bucket 0; each power-of-two octave [2^k, 2^(k+1)) for k in
// [histMinShift, histMaxShift] is divided into histSub equal linear
// sub-buckets; values at or above 2^(histMaxShift+1) clamp into the top
// bucket. Reporting a bucket's upper bound therefore overestimates a value
// by at most one sub-bucket width, i.e. a relative error of at most
// 1/histSub = 12.5% (absolute 2^histMinShift ns inside bucket 0).
const (
	histSubBits  = 3
	histSub      = 1 << histSubBits // linear sub-buckets per octave
	histMinShift = 8                // bucket 0: [0, 256) ns
	histMaxShift = 39               // top octave: [2^39, 2^40) ns ≈ 9.2 min
	histOctaves  = histMaxShift - histMinShift + 1

	// HistBuckets is the bucket count of every histogram.
	HistBuckets = 1 + histOctaves*histSub
)

// histBucketOf maps a nanosecond value to its bucket index.
func histBucketOf(v uint64) int {
	if v < 1<<histMinShift {
		return 0
	}
	oct := bits.Len64(v) - 1
	if oct > histMaxShift {
		return HistBuckets - 1
	}
	sub := (v >> (uint(oct) - histSubBits)) & (histSub - 1)
	return 1 + (oct-histMinShift)*histSub + int(sub)
}

// HistBucketUpper returns the inclusive upper value bound reported for
// bucket i, in nanoseconds.
func HistBucketUpper(i int) float64 {
	if i <= 0 {
		return float64(uint64(1) << histMinShift)
	}
	i--
	oct := uint(histMinShift + i/histSub)
	sub := uint64(i%histSub) + 1
	return float64(uint64(1)<<oct + sub<<(oct-histSubBits))
}

// HistogramShard is one worker's bucket array. Exactly one goroutine (the
// owning worker) may Observe into a shard; snapshots may be taken from any
// goroutine at any time.
type HistogramShard struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records a nanosecond value. Owner-only; allocation-free; three
// single-writer load/store pairs, no RMW.
func (s *HistogramShard) Observe(v uint64) {
	b := &s.buckets[histBucketOf(v)]
	b.Store(b.Load() + 1)
	s.count.Store(s.count.Load() + 1)
	s.sum.Store(s.sum.Load() + v)
}

// ObserveDuration records a duration (negative durations count as zero).
func (s *HistogramShard) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.Observe(uint64(d))
}

// snapshotInto accumulates the shard into snap.
func (s *HistogramShard) snapshotInto(snap *HistogramSnapshot) {
	for i := range s.buckets {
		snap.Buckets[i] += s.buckets[i].Load()
	}
	snap.Count += s.count.Load()
	snap.Sum += s.sum.Load()
}

// Histogram is a per-worker sharded log-linear histogram of nanosecond
// values (latencies).
type Histogram struct {
	shards []HistogramShard
}

func newHistogram(workers int) *Histogram {
	return &Histogram{shards: make([]HistogramShard, workers)}
}

// Shard returns worker id's shard.
func (h *Histogram) Shard(id int) *HistogramShard { return &h.shards[id] }

// Snapshot merges all shards. Buckets are read individually atomically but
// not at one instant: a snapshot taken while workers record can be
// transiently inconsistent (Count may not equal the bucket sum); it is
// always element-wise ≥ any earlier snapshot of the same shards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	for i := range h.shards {
		h.shards[i].snapshotInto(&snap)
	}
	return snap
}

// HistogramSnapshot is a point-in-time copy of a histogram; snapshots merge
// by element-wise addition, which is associative and commutative, so any
// merge tree over worker shards yields the same result.
type HistogramSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Merge adds o into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the value (ns) at quantile q (0 < q ≤ 1), reported as
// the containing bucket's upper bound: an overestimate by at most 12.5%
// relative (256 ns absolute below 256 ns). Returns 0 for an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return HistBucketUpper(i)
		}
	}
	return HistBucketUpper(HistBuckets - 1)
}

// Mean returns the average recorded value (ns), exact up to scrape
// staleness (Sum and Count are tracked directly).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
