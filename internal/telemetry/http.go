package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// WritePrometheus renders every metric in Prometheus text exposition
// format. Counters and gauges are one sample each; histograms render as
// summaries (quantile series plus _sum and _count), which keeps the output
// compact while exposing tail latency directly.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastFamily := ""
	for _, m := range r.snapshotMetrics() {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family, promType(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.fullName(), m.counter.Total())
		case kindGauge:
			fmt.Fprintf(w, "%s %d\n", m.fullName(), m.gauge.Total())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(w, "%s %g\n", m.fullName(), m.fn())
		case kindHistogram:
			s := m.hist.Snapshot()
			for _, q := range histQuantiles {
				fmt.Fprintf(w, "%s%s %g\n", m.family, mergeLabels(m.labels, "quantile", strconv.FormatFloat(q, 'g', -1, 64)), s.Quantile(q))
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", m.family, m.labels, s.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", m.family, m.labels, s.Count)
		}
	}
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

// mergeLabels appends one key=value pair to an already-rendered label set.
func mergeLabels(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WriteJSON renders the registry as an expvar-style flat JSON object
// (sorted keys, labels folded into names as in Values).
func (r *Registry) WriteJSON(w io.Writer) error {
	vals := r.Values()
	// Encode with sorted keys for stable output.
	out := make(map[string]json.Number, len(vals))
	for _, k := range sortedKeys(vals) {
		out[k] = json.Number(strconv.FormatFloat(vals[k], 'g', -1, 64))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Live is an atomically swappable registry pointer: a long-lived HTTP
// endpoint serves whichever registry is current, so a benchmark harness can
// install a fresh registry per trial while scrapers keep one stable URL.
type Live struct {
	reg atomic.Pointer[Registry]
	// aux holds extra endpoints registered with Handle (the transaction
	// tracer's /debug/cicada-trace, net/http/pprof). Guarded by auxMu;
	// Handler snapshots it, so registration after Serve still takes effect
	// on the next Handler build but not on an already-built mux.
	auxMu sync.Mutex
	aux   map[string]http.Handler
}

// NewLive returns a Live with no registry installed (endpoints return 503
// until Set is called).
func NewLive() *Live { return &Live{} }

// Set installs r as the current registry.
func (l *Live) Set(r *Registry) { l.reg.Store(r) }

// Registry returns the current registry, or nil.
func (l *Live) Registry() *Registry { return l.reg.Load() }

// Handle registers an extra endpoint on the live mux under the given
// pattern (e.g. "/debug/cicada-trace"). Call before Serve/Handler; the
// telemetry package stays ignorant of what it serves, which keeps the
// dependency direction one-way (trace imports telemetry, never the
// reverse).
func (l *Live) Handle(pattern string, h http.Handler) {
	l.auxMu.Lock()
	defer l.auxMu.Unlock()
	if l.aux == nil {
		l.aux = make(map[string]http.Handler)
	}
	l.aux[pattern] = h
}

// EnablePprof mounts net/http/pprof's endpoints under /debug/pprof/ on the
// live mux and applies the runtime profile-rate toggles: mutexFraction
// feeds runtime.SetMutexProfileFraction and blockRate feeds
// runtime.SetBlockProfileRate (0 leaves either disabled; they cost nothing
// until set). Opt-in only — profiling endpoints on a metrics port are a
// deliberate choice, not a default.
func (l *Live) EnablePprof(mutexFraction, blockRate int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	l.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	l.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	l.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	l.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	l.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}

// Handler returns an http.Handler serving the live registry:
//
//	/metrics         Prometheus text exposition format
//	/debug/vars      expvar-style flat JSON
//	/debug/txntrace  JSON dump of the aborted-transaction flight recorder
//	                 (?n=max entries, default 64)
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	withReg := func(fn func(w http.ResponseWriter, req *http.Request, r *Registry)) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			r := l.Registry()
			if r == nil {
				http.Error(w, "telemetry: no registry installed", http.StatusServiceUnavailable)
				return
			}
			fn(w, req, r)
		}
	}
	mux.HandleFunc("/metrics", withReg(func(w http.ResponseWriter, _ *http.Request, r *Registry) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	}))
	mux.HandleFunc("/debug/vars", withReg(func(w http.ResponseWriter, _ *http.Request, r *Registry) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/txntrace", withReg(func(w http.ResponseWriter, req *http.Request, r *Registry) {
		rec := r.Recorder()
		if rec == nil {
			http.Error(w, "telemetry: no flight recorder attached", http.StatusNotFound)
			return
		}
		n := 64
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec.Dump(n))
	}))
	l.auxMu.Lock()
	for pattern, h := range l.aux {
		mux.Handle(pattern, h)
	}
	l.auxMu.Unlock()
	return mux
}

// Handler returns a static handler for a single registry (the Live
// machinery with the registry pre-installed).
func Handler(r *Registry) http.Handler {
	l := NewLive()
	l.Set(r)
	return l.Handler()
}

// Serve listens on addr and serves l's handler until the returned server is
// shut down. It returns the bound address (useful with ":0").
func Serve(addr string, l *Live) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: l.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
