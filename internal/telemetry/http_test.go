package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestRegistry() *Registry {
	r := NewRegistry(2)
	c := r.Counter("cicada_commits_total", "Committed transactions.")
	c.Shard(0).Add(40)
	c.Shard(1).Add(2)
	h := r.Histogram("cicada_commit_latency_ns", "Commit latency.", Label{"phase", "validate"})
	h.Shard(0).Observe(2048)
	rec := NewRecorder(2, 4, []string{"rts_early"})
	rec.Shard(1).Record(TraceSample{TS: 77, Reason: 0, StartUnixNano: 123, Reads: 5})
	r.SetRecorder(rec)
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "cicada_commits_total 42") {
		t.Errorf("/metrics missing summed counter:\n%s", body)
	}
	if !strings.Contains(body, `cicada_commit_latency_ns{phase="validate",quantile="0.99"}`) {
		t.Errorf("/metrics missing quantile series:\n%s", body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]float64
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars["cicada_commits_total"] != 42 {
		t.Errorf("vars counter = %g, want 42", vars["cicada_commits_total"])
	}

	code, body = get(t, srv, "/debug/txntrace")
	if code != http.StatusOK {
		t.Fatalf("/debug/txntrace status %d", code)
	}
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/txntrace not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Worker != 1 || traces[0].TS != 77 || traces[0].Reason != "rts_early" {
		t.Errorf("txntrace = %+v", traces)
	}
}

func TestHandlerNoRegistry(t *testing.T) {
	srv := httptest.NewServer(NewLive().Handler())
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

func TestLiveSwap(t *testing.T) {
	l := NewLive()
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	r1 := NewRegistry(1)
	r1.Counter("trial_total", "h").Shard(0).Add(1)
	l.Set(r1)
	if _, body := get(t, srv, "/metrics"); !strings.Contains(body, "trial_total 1") {
		t.Fatalf("first registry not served:\n%s", body)
	}

	r2 := NewRegistry(1)
	r2.Counter("trial_total", "h").Shard(0).Add(2)
	l.Set(r2)
	if _, body := get(t, srv, "/metrics"); !strings.Contains(body, "trial_total 2") {
		t.Fatalf("swapped registry not served:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	l := NewLive()
	l.Set(newTestRegistry())
	srv, addr, err := Serve("127.0.0.1:0", l)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "cicada_commits_total") {
		t.Fatalf("served output missing counter:\n%s", body)
	}
}

func TestRecorderNotAttached(t *testing.T) {
	r := NewRegistry(1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/txntrace"); code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
}
