package telemetry

import (
	"sort"
	"sync/atomic"
)

// TraceSample is one aborted transaction's timeline as captured by the
// engine: when it started, how long each phase ran, what it touched, and
// why it died. All fields are plain words so recording stays
// allocation-free.
type TraceSample struct {
	// TS is the transaction timestamp (raw clock.Timestamp bits).
	TS uint64
	// Reason indexes the recorder's reason-name table (the engine's abort
	// taxonomy).
	Reason uint64
	// StartUnixNano is the wall-clock begin time.
	StartUnixNano int64
	// ExecuteNs and ValidateNs are the phase durations up to the abort; a
	// read-phase abort has ValidateNs == 0.
	ExecuteNs  uint64
	ValidateNs uint64
	// Reads and Writes are the read- and write-set sizes at abort time.
	Reads  uint64
	Writes uint64
}

// traceSlot is one ring entry, written through a seqlock: the writer bumps
// seq to odd, stores the payload words, then bumps seq to even. Readers
// retry or skip slots whose seq is odd or changed mid-read. Every word is
// atomic, so the pattern is race-detector-clean; the seqlock only protects
// against torn multi-word entries.
type traceSlot struct {
	seq      atomic.Uint64
	ts       atomic.Uint64
	reason   atomic.Uint64
	start    atomic.Int64
	exec     atomic.Uint64
	validate atomic.Uint64
	reads    atomic.Uint64
	writes   atomic.Uint64
}

// RecorderShard is one worker's ring. Exactly one goroutine may Record into
// a shard; Dump may run from any goroutine at any time.
type RecorderShard struct {
	next  atomic.Uint64 // entries ever recorded; owner-only writer
	slots []traceSlot
	_     [32]byte
}

// Record appends sample, overwriting the oldest entry once the ring is
// full. Owner-only; allocation-free; no locks or RMW.
func (s *RecorderShard) Record(sample TraceSample) {
	i := s.next.Load()
	slot := &s.slots[i%uint64(len(s.slots))]
	seq := slot.seq.Load()
	slot.seq.Store(seq + 1) // odd: writing
	slot.ts.Store(sample.TS)
	slot.reason.Store(sample.Reason)
	slot.start.Store(sample.StartUnixNano)
	slot.exec.Store(sample.ExecuteNs)
	slot.validate.Store(sample.ValidateNs)
	slot.reads.Store(sample.Reads)
	slot.writes.Store(sample.Writes)
	slot.seq.Store(seq + 2) // even: stable
	s.next.Store(i + 1)
}

// Trace is one dumped flight-recorder entry.
type Trace struct {
	Worker        int    `json:"worker"`
	TS            uint64 `json:"ts"`
	Reason        string `json:"reason"`
	StartUnixNano int64  `json:"start_unix_nano"`
	ExecuteNs     uint64 `json:"execute_ns"`
	ValidateNs    uint64 `json:"validate_ns"`
	Reads         uint64 `json:"reads"`
	Writes        uint64 `json:"writes"`
}

// Recorder is the per-worker transaction flight recorder: each worker owns
// a fixed-depth ring of its most recent aborted transactions.
type Recorder struct {
	shards  []RecorderShard
	reasons []string
}

// NewRecorder creates a recorder with one ring of the given depth per
// worker. reasons maps TraceSample.Reason indexes to names for dumps.
func NewRecorder(workers, depth int, reasons []string) *Recorder {
	if depth < 1 {
		depth = 1
	}
	r := &Recorder{shards: make([]RecorderShard, workers), reasons: reasons}
	for i := range r.shards {
		r.shards[i].slots = make([]traceSlot, depth)
	}
	return r
}

// Shard returns worker id's ring.
func (r *Recorder) Shard(id int) *RecorderShard { return &r.shards[id] }

// reasonName maps a reason index to its name.
func (r *Recorder) reasonName(i uint64) string {
	if i < uint64(len(r.reasons)) {
		return r.reasons[i]
	}
	return "unknown"
}

// Dump collects up to max stable entries across all workers, newest first
// (by wall-clock start). Entries being overwritten concurrently are
// skipped, so a dump under load can return slightly fewer than max.
func (r *Recorder) Dump(max int) []Trace {
	var out []Trace
	for w := range r.shards {
		s := &r.shards[w]
		depth := uint64(len(s.slots))
		next := s.next.Load()
		n := next
		if n > depth {
			n = depth
		}
		for k := uint64(0); k < n; k++ {
			slot := &s.slots[(next-1-k)%depth]
			seq1 := slot.seq.Load()
			if seq1%2 != 0 || seq1 == 0 {
				continue // mid-write or never written
			}
			tr := Trace{
				Worker:        w,
				TS:            slot.ts.Load(),
				Reason:        r.reasonName(slot.reason.Load()),
				StartUnixNano: slot.start.Load(),
				ExecuteNs:     slot.exec.Load(),
				ValidateNs:    slot.validate.Load(),
				Reads:         slot.reads.Load(),
				Writes:        slot.writes.Load(),
			}
			if slot.seq.Load() != seq1 {
				continue // overwritten while reading
			}
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
