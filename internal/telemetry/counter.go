package telemetry

import "sync/atomic"

// CounterShard is one worker's slice of a sharded counter, padded to its own
// cache line so one worker's updates never invalidate a neighbour's. Exactly
// one goroutine (the owning worker) may write a shard; any goroutine may
// read it.
//
// Do not copy a shard: a copy silently forks the word (cicada-lint's
// mixedatomic analyzer flags by-value uses of telemetry types).
type CounterShard struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one. Owner-only: the single-writer discipline makes an atomic
// load/store pair sufficient — no RMW, no lock.
func (s *CounterShard) Inc() { s.v.Store(s.v.Load() + 1) }

// Add adds d. Owner-only.
func (s *CounterShard) Add(d uint64) { s.v.Store(s.v.Load() + d) }

// Value returns the shard's current value; safe from any goroutine.
func (s *CounterShard) Value() uint64 { return s.v.Load() }

// Counter is a per-worker sharded monotone counter.
type Counter struct {
	shards []CounterShard
}

func newCounter(workers int) *Counter {
	return &Counter{shards: make([]CounterShard, workers)}
}

// Shard returns worker id's shard.
func (c *Counter) Shard(id int) *CounterShard { return &c.shards[id] }

// Total sums all shards. The result can lag concurrent writers by a few
// increments but never goes backward relative to a later scrape of the same
// writer set.
func (c *Counter) Total() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].Value()
	}
	return n
}

// GaugeShard is one worker's slice of a sharded gauge (same ownership rules
// as CounterShard).
type GaugeShard struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v. Owner-only (a gauge shard has one writer; readers see the
// last written value).
func (s *GaugeShard) Set(v int64) { s.v.Store(v) }

// Add adds d. Owner-only.
func (s *GaugeShard) Add(d int64) { s.v.Store(s.v.Load() + d) }

// Value returns the shard's current value; safe from any goroutine.
func (s *GaugeShard) Value() int64 { return s.v.Load() }

// Gauge is a per-worker sharded gauge; Total sums the shards, so per-worker
// quantities (queue depths) aggregate naturally. Engine-global gauges use
// shard 0 only.
type Gauge struct {
	shards []GaugeShard
}

func newGauge(workers int) *Gauge {
	return &Gauge{shards: make([]GaugeShard, workers)}
}

// Shard returns worker id's shard.
func (g *Gauge) Shard(id int) *GaugeShard { return &g.shards[id] }

// Total sums all shards.
func (g *Gauge) Total() int64 {
	var n int64
	for i := range g.shards {
		n += g.shards[i].Value()
	}
	return n
}
