package telemetry

import (
	"sync"
	"testing"
)

func TestRecorderWrapAndOrder(t *testing.T) {
	reasons := []string{"rts_early", "validation"}
	rec := NewRecorder(1, 4, reasons)
	s := rec.Shard(0)
	for i := 1; i <= 6; i++ {
		s.Record(TraceSample{
			TS:            uint64(i),
			Reason:        uint64(i % 2),
			StartUnixNano: int64(i * 1000),
			ExecuteNs:     uint64(i),
			Reads:         2,
			Writes:        1,
		})
	}
	got := rec.Dump(10)
	if len(got) != 4 {
		t.Fatalf("dumped %d entries, want 4 (ring depth)", len(got))
	}
	// Newest first: entries 6,5,4,3.
	for i, wantTS := range []uint64{6, 5, 4, 3} {
		if got[i].TS != wantTS {
			t.Fatalf("entry %d: ts=%d, want %d", i, got[i].TS, wantTS)
		}
	}
	if got[0].Reason != "rts_early" || got[1].Reason != "validation" {
		t.Fatalf("reason mapping wrong: %q, %q", got[0].Reason, got[1].Reason)
	}
	if got := rec.Dump(2); len(got) != 2 {
		t.Fatalf("Dump(2) returned %d entries", len(got))
	}
}

func TestRecorderUnknownReason(t *testing.T) {
	rec := NewRecorder(1, 2, []string{"only"})
	rec.Shard(0).Record(TraceSample{Reason: 99, StartUnixNano: 1})
	got := rec.Dump(1)
	if len(got) != 1 || got[0].Reason != "unknown" {
		t.Fatalf("got %+v, want one entry with reason unknown", got)
	}
}

func TestRecorderEmptyDump(t *testing.T) {
	rec := NewRecorder(2, 8, nil)
	if got := rec.Dump(10); len(got) != 0 {
		t.Fatalf("empty recorder dumped %d entries", len(got))
	}
}

// TestRecorderConcurrent records from one goroutine per shard while the main
// goroutine dumps continuously; meaningful under -race (validates the
// all-atomic seqlock), and dumps must never contain garbage reasons.
func TestRecorderConcurrent(t *testing.T) {
	const workers, perWorker = 4, 10_000
	reasons := []string{"a", "b", "c"}
	rec := NewRecorder(workers, 16, reasons)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := rec.Shard(id)
			for i := 0; i < perWorker; i++ {
				s.Record(TraceSample{
					TS:            uint64(i),
					Reason:        uint64(i % len(reasons)),
					StartUnixNano: int64(i),
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, tr := range rec.Dump(64) {
			if tr.Reason == "unknown" {
				t.Fatal("dump returned unknown reason for in-range sample")
			}
		}
		select {
		case <-done:
			got := rec.Dump(0)
			if len(got) != workers*16 {
				t.Fatalf("quiescent dump returned %d entries, want %d", len(got), workers*16)
			}
			return
		default:
		}
	}
}
