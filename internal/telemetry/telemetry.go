// Package telemetry is the engine's observability layer: per-worker,
// allocation-free metrics whose write side is completely unsynchronized, in
// the same one-sided discipline as the multi-clock (§3.1) — each hot-path
// word has exactly one writer, writers never take locks or issue
// read-modify-write instructions, and readers tolerate slightly stale
// values by doing plain atomic loads.
//
// Three primitive families cover the engine's needs:
//
//   - Counter / Gauge: one cache-line-padded atomic word per worker.
//     The owning worker updates its shard with an atomic load/store pair
//     (a single-writer word needs no RMW); scrapers sum the shards.
//   - Histogram: a per-worker log-linear bucket array (8 linear sub-buckets
//     per power-of-two octave, bounding the relative quantile error at
//     1/8). Snapshots merge across shards by plain addition, so merging is
//     associative and scrape-time work never touches the hot path.
//   - Recorder: a per-worker ring buffer of recently aborted transactions
//     ("flight recorder") written through a seqlock built from atomic
//     stores, for postmortem conflict debugging.
//
// A Registry names the metrics and renders them as Prometheus text,
// expvar-style JSON, and a transaction-trace dump (see http.go). Metric
// registration is cold and mutex-guarded; everything on the record path is
// lock-free and allocation-free.
//
// Staleness contract: a scrape observes each shard word atomically but the
// set of words is not read at one instant — totals can be mid-transaction
// inconsistent (e.g. a histogram's count may momentarily disagree with the
// sum of its buckets, commits+aborts may lag a transaction that is
// currently finishing). Every word is monotone (counters) or
// last-write-wins (gauges), so successive scrapes converge. See
// docs/OBSERVABILITY.md for the full contract.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one constant metric label pair, fixed at registration.
type Label struct {
	Key, Value string
}

// metricKind discriminates the registry's metric table.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric family member.
type metric struct {
	family string // e.g. "cicada_aborts_total"
	labels string // rendered label set, e.g. `{reason="rts_early"}`, or ""
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // kindCounterFunc / kindGaugeFunc
	hist    *Histogram
}

// fullName returns family plus the rendered label set.
func (m *metric) fullName() string { return m.family + m.labels }

// Registry holds a set of named metrics for one engine instance plus an
// optional transaction flight recorder. Registration is mutex-guarded and
// must finish before the hot path runs; scraping is safe at any time.
type Registry struct {
	workers int

	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
	rec     *Recorder
}

// NewRegistry creates a registry whose sharded metrics have one shard per
// worker (1 ≤ workers).
func NewRegistry(workers int) *Registry {
	if workers < 1 {
		panic("telemetry: NewRegistry needs at least one worker")
	}
	return &Registry{workers: workers, byName: make(map[string]bool)}
}

// Workers returns the shard count of this registry's sharded metrics.
func (r *Registry) Workers() int { return r.workers }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.fullName()] {
		panic("telemetry: duplicate metric " + m.fullName())
	}
	r.byName[m.fullName()] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a sharded monotone counter.
func (r *Registry) Counter(family, help string, labels ...Label) *Counter {
	c := newCounter(r.workers)
	r.add(&metric{family: family, labels: renderLabels(labels), help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers a sharded last-write-wins gauge.
func (r *Registry) Gauge(family, help string, labels ...Label) *Gauge {
	g := newGauge(r.workers)
	r.add(&metric{family: family, labels: renderLabels(labels), help: help, kind: kindGauge, gauge: g})
	return g
}

// CounterFunc registers a counter whose value is computed at scrape time
// (e.g. summing an engine's own atomic words). fn must be safe to call from
// any goroutine and should be monotone.
func (r *Registry) CounterFunc(family, help string, fn func() float64, labels ...Label) {
	r.add(&metric{family: family, labels: renderLabels(labels), help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(family, help string, fn func() float64, labels ...Label) {
	r.add(&metric{family: family, labels: renderLabels(labels), help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers a sharded log-linear histogram of nanosecond values.
func (r *Registry) Histogram(family, help string, labels ...Label) *Histogram {
	h := newHistogram(r.workers)
	r.add(&metric{family: family, labels: renderLabels(labels), help: help, kind: kindHistogram, hist: h})
	return h
}

// SetRecorder attaches the transaction flight recorder served at
// /debug/txntrace.
func (r *Registry) SetRecorder(rec *Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec = rec
}

// Recorder returns the attached flight recorder, or nil.
func (r *Registry) Recorder() *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rec
}

// snapshotMetrics returns the metric table (registration is append-only, so
// holding the slice after unlock is safe).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// histQuantiles are the quantiles rendered for each histogram in the
// Prometheus summary output and in Values.
var histQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// sanitizeKey flattens a full metric name (family plus labels) into a flat
// map key: cicada_aborts_total{reason="rts_early"} →
// cicada_aborts_total_rts_early.
func sanitizeKey(full string) string {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full
	}
	var b strings.Builder
	b.WriteString(full[:i])
	for _, l := range strings.Split(strings.Trim(full[i:], "{}"), ",") {
		if _, v, ok := strings.Cut(l, "="); ok {
			b.WriteByte('_')
			b.WriteString(strings.Trim(v, `"`))
		}
	}
	return b.String()
}

// Values renders every metric into a flat name → value map (labels folded
// into the key). Histograms contribute _count, _sum and quantile entries
// (_p50, _p90, _p99, _p999, in nanoseconds). Intended for per-trial export
// into benchmark results.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMetrics() {
		key := sanitizeKey(m.fullName())
		switch m.kind {
		case kindCounter:
			out[key] = float64(m.counter.Total())
		case kindGauge:
			out[key] = float64(m.gauge.Total())
		case kindCounterFunc, kindGaugeFunc:
			out[key] = m.fn()
		case kindHistogram:
			s := m.hist.Snapshot()
			out[key+"_count"] = float64(s.Count)
			out[key+"_sum"] = float64(s.Sum)
			for _, q := range histQuantiles {
				out[fmt.Sprintf("%s_p%s", key, quantileSuffix(q))] = s.Quantile(q)
			}
		}
	}
	return out
}

// MonotoneValues renders only the monotone series — counters, counter
// funcs, and histogram _count/_sum — keyed as in Values. Two calls
// bracketing a window yield meaningful deltas; gauges are excluded because
// differencing a last-write-wins value is not a rate.
func (r *Registry) MonotoneValues() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMetrics() {
		key := sanitizeKey(m.fullName())
		switch m.kind {
		case kindCounter:
			out[key] = float64(m.counter.Total())
		case kindCounterFunc:
			out[key] = m.fn()
		case kindHistogram:
			s := m.hist.Snapshot()
			out[key+"_count"] = float64(s.Count)
			out[key+"_sum"] = float64(s.Sum)
		}
	}
	return out
}

func quantileSuffix(q float64) string {
	s := fmt.Sprintf("%g", q*100) // 0.5 → "50", 0.999 → "99.9"
	return strings.ReplaceAll(s, ".", "")
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
