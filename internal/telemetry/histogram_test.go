package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistBucketOfBounds checks the bucket mapping is monotone and that the
// reported upper bound always dominates the recorded value.
func TestHistBucketOfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prev := -1
	for _, v := range []uint64{0, 1, 255, 256, 257, 511, 512, 1 << 20, 1 << 39, 1<<40 - 1, 1 << 40, 1 << 63} {
		b := histBucketOf(v)
		if b < 0 || b >= HistBuckets {
			t.Fatalf("bucket %d out of range for %d", b, v)
		}
		if up := HistBucketUpper(b); float64(v) > up && b != HistBuckets-1 {
			t.Fatalf("upper bound %g < value %d (bucket %d)", up, v, b)
		}
		_ = prev
	}
	// Monotonicity over random increasing pairs.
	for i := 0; i < 10000; i++ {
		a := rng.Uint64() >> uint(rng.Intn(50))
		b := a + uint64(rng.Intn(1<<20))
		if histBucketOf(a) > histBucketOf(b) {
			t.Fatalf("bucket not monotone: bucket(%d)=%d > bucket(%d)=%d",
				a, histBucketOf(a), b, histBucketOf(b))
		}
	}
}

// TestHistogramQuantileAccuracy drives random workloads through a histogram
// and checks every reported quantile against the exact order statistic: the
// estimate must be >= the exact value and overshoot by at most one
// sub-bucket (12.5% relative, or the 256 ns floor of bucket 0).
func TestHistogramQuantileAccuracy(t *testing.T) {
	distributions := []struct {
		name string
		gen  func(r *rand.Rand) uint64
	}{
		{"uniform", func(r *rand.Rand) uint64 { return uint64(r.Intn(5_000_000)) }},
		{"exponentialish", func(r *rand.Rand) uint64 { return uint64(1) << uint(r.Intn(34)) }},
		{"smallvalues", func(r *rand.Rand) uint64 { return uint64(r.Intn(512)) }},
		{"heavytail", func(r *rand.Rand) uint64 {
			if r.Intn(100) == 0 {
				return uint64(r.Int63n(1 << 38))
			}
			return uint64(r.Intn(100_000))
		}},
	}
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := newHistogram(4)
			var values []uint64
			for i := 0; i < 50_000; i++ {
				v := dist.gen(rng)
				h.Shard(i % 4).Observe(v)
				values = append(values, v)
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			snap := h.Snapshot()
			if snap.Count != uint64(len(values)) {
				t.Fatalf("count %d, want %d", snap.Count, len(values))
			}
			for _, q := range []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
				rank := uint64(q * float64(len(values)))
				if rank == 0 {
					rank = 1
				}
				if rank > uint64(len(values)) {
					rank = uint64(len(values))
				}
				exact := float64(values[rank-1])
				got := snap.Quantile(q)
				hi := exact * 1.125
				if hi < 256 {
					hi = 256
				}
				if got < exact || got > hi {
					t.Errorf("q=%g: estimate %g outside [%g, %g]", q, got, exact, hi)
				}
			}
		})
	}
}

// TestHistogramQuantileEmpty checks the zero-value cases.
func TestHistogramQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %g, want 0", got)
	}
}

// TestHistogramMergeAssociativity checks (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
// exactly, bucket by bucket — the property that makes scrape-side merge
// trees order-independent.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() HistogramSnapshot {
		h := newHistogram(1)
		for i := 0; i < 1000; i++ {
			h.Shard(0).Observe(uint64(rng.Intn(1 << 30)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	left := a // copies: snapshots are plain value types
	left.Merge(&b)
	left.Merge(&c)

	bc := b
	bc.Merge(&c)
	right := a
	right.Merge(&bc)

	if left != right {
		t.Fatalf("merge not associative: (a+b)+c != a+(b+c)")
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", left.Count, a.Count+b.Count+c.Count)
	}
	if left.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum %d, want %d", left.Sum, a.Sum+b.Sum+c.Sum)
	}
}

// TestHistogramConcurrentSnapshot runs one recording goroutine per shard
// with continuous snapshotting from the main goroutine. Run under -race this
// validates the single-writer protocol; the final snapshot must account for
// every observation.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	const workers, perWorker = 4, 20_000
	h := newHistogram(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			s := h.Shard(id)
			for i := 0; i < perWorker; i++ {
				s.Observe(uint64(rng.Intn(1 << 25)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		snap := h.Snapshot()
		if snap.Count > workers*perWorker {
			t.Fatalf("snapshot count %d exceeds total records %d", snap.Count, workers*perWorker)
		}
		select {
		case <-done:
			final := h.Snapshot()
			if final.Count != workers*perWorker {
				t.Fatalf("final count %d, want %d", final.Count, workers*perWorker)
			}
			var bucketSum uint64
			for _, n := range final.Buckets {
				bucketSum += n
			}
			if bucketSum != final.Count {
				t.Fatalf("quiescent bucket sum %d != count %d", bucketSum, final.Count)
			}
			return
		default:
		}
	}
}
