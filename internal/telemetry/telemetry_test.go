package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSharding(t *testing.T) {
	r := NewRegistry(3)
	c := r.Counter("test_total", "help")
	c.Shard(0).Inc()
	c.Shard(1).Add(10)
	c.Shard(2).Add(100)
	if got := c.Total(); got != 111 {
		t.Fatalf("Total = %d, want 111", got)
	}
	if got := c.Shard(1).Value(); got != 10 {
		t.Fatalf("Shard(1) = %d, want 10", got)
	}
}

func TestGaugeSharding(t *testing.T) {
	r := NewRegistry(2)
	g := r.Gauge("test_depth", "help")
	g.Shard(0).Set(5)
	g.Shard(1).Set(-2)
	g.Shard(1).Add(3)
	if got := g.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
}

// TestCounterConcurrentReaders hammers one shard per goroutine while another
// goroutine sums totals; meaningful under -race.
func TestCounterConcurrentReaders(t *testing.T) {
	const workers, perWorker = 4, 50_000
	r := NewRegistry(workers)
	c := r.Counter("race_total", "help")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := c.Shard(id)
			for i := 0; i < perWorker; i++ {
				s.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if c.Total() > workers*perWorker {
			t.Fatal("total exceeded writes")
		}
		select {
		case <-done:
			if got := c.Total(); got != workers*perWorker {
				t.Fatalf("final total %d, want %d", got, workers*perWorker)
			}
			return
		default:
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("dup_total", "help", Label{"k", "v"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Counter("dup_total", "other help", Label{"k", "v"})
}

func TestOwnerWordHelpers(t *testing.T) {
	var w uint64
	OwnerIncUint64(&w)
	OwnerAddUint64(&w, 41)
	if got := ReadUint64(&w); got != 42 {
		t.Fatalf("word = %d, want 42", got)
	}
}

func TestSanitizeKey(t *testing.T) {
	cases := map[string]string{
		"plain_total":                            "plain_total",
		`cicada_aborts_total{reason="rts_early"}`: "cicada_aborts_total_rts_early",
		`x{a="1",b="2"}`:                          "x_1_2",
	}
	for in, want := range cases {
		if got := sanitizeKey(in); got != want {
			t.Errorf("sanitizeKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValues(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("commits_total", "h", Label{"engine", "cicada"})
	c.Shard(0).Add(7)
	g := r.Gauge("gc_queue_depth", "h")
	g.Shard(1).Set(3)
	r.GaugeFunc("clock_drift", "h", func() float64 { return 1.5 })
	h := r.Histogram("latency_ns", "h", Label{"phase", "execute"})
	for i := 0; i < 100; i++ {
		h.Shard(0).Observe(1000)
	}

	vals := r.Values()
	if vals["commits_total_cicada"] != 7 {
		t.Errorf("counter = %g, want 7", vals["commits_total_cicada"])
	}
	if vals["gc_queue_depth"] != 3 {
		t.Errorf("gauge = %g, want 3", vals["gc_queue_depth"])
	}
	if vals["clock_drift"] != 1.5 {
		t.Errorf("gaugefunc = %g, want 1.5", vals["clock_drift"])
	}
	if vals["latency_ns_execute_count"] != 100 {
		t.Errorf("hist count = %g, want 100", vals["latency_ns_execute_count"])
	}
	if vals["latency_ns_execute_sum"] != 100_000 {
		t.Errorf("hist sum = %g, want 100000", vals["latency_ns_execute_sum"])
	}
	p50 := vals["latency_ns_execute_p50"]
	if p50 < 1000 || p50 > 1125 {
		t.Errorf("p50 = %g, want within [1000, 1125]", p50)
	}
	if _, ok := vals["latency_ns_execute_p999"]; !ok {
		t.Error("missing p999 key")
	}
}

func TestQuantileSuffix(t *testing.T) {
	cases := map[float64]string{0.5: "50", 0.9: "90", 0.99: "99", 0.999: "999"}
	for q, want := range cases {
		if got := quantileSuffix(q); got != want {
			t.Errorf("quantileSuffix(%g) = %q, want %q", q, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry(1)
	c := r.Counter("cicada_aborts_total", "Aborted transactions.", Label{"reason", "rts_early"})
	c.Shard(0).Add(3)
	r.Counter("cicada_aborts_total", "Aborted transactions.", Label{"reason", "write_latest"})
	g := r.Gauge("cicada_gc_queue_depth", "GC queue depth.")
	g.Shard(0).Set(9)
	h := r.Histogram("cicada_commit_latency_ns", "Commit latency.", Label{"phase", "execute"})
	h.Shard(0).Observe(500)
	h.Shard(0).Observe(500)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP cicada_aborts_total Aborted transactions.\n",
		"# TYPE cicada_aborts_total counter\n",
		`cicada_aborts_total{reason="rts_early"} 3`,
		`cicada_aborts_total{reason="write_latest"} 0`,
		"# TYPE cicada_gc_queue_depth gauge\n",
		"cicada_gc_queue_depth 9",
		"# TYPE cicada_commit_latency_ns summary\n",
		`cicada_commit_latency_ns{phase="execute",quantile="0.5"}`,
		`cicada_commit_latency_ns{phase="execute",quantile="0.999"}`,
		`cicada_commit_latency_ns_sum{phase="execute"} 1000`,
		`cicada_commit_latency_ns_count{phase="execute"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE cicada_aborts_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}
