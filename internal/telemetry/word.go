package telemetry

import "sync/atomic"

// Raw-word accessors: the same single-writer discipline as CounterShard, for
// plain uint64 fields in structs that cannot embed telemetry types (e.g.
// pre-existing per-worker counters that a scraper must now read live).
//
// A word accessed through these helpers must be accessed through them (or
// sync/atomic) everywhere — cicada-lint's mixedatomic analyzer recognizes
// them as sanctioned atomic accessors and flags any remaining plain access
// of the same field module-wide.

// OwnerAddUint64 adds d to a single-writer word with an atomic load/store
// pair. Only the word's owning goroutine may call it.
//
//cicada:noalloc
func OwnerAddUint64(p *uint64, d uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+d)
}

// OwnerIncUint64 adds one to a single-writer word. Owner-only.
//
//cicada:noalloc
func OwnerIncUint64(p *uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+1)
}

// ReadUint64 atomically reads a word maintained by the owner-side helpers;
// safe from any goroutine, may lag the owner by an in-flight update.
//
//cicada:noalloc
func ReadUint64(p *uint64) uint64 {
	return atomic.LoadUint64(p)
}
